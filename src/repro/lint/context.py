"""Per-file analysis context shared by every rule.

A rule receives one :class:`FileContext` and asks it scoping questions
("is this file inside a simulation-scoped package?", "is it test
code?") instead of re-deriving paths itself.  Scoping is what lets the
same rule set run over ``src/``, ``benchmarks/`` and ``examples/``
without drowning legitimate code — the monitoring server *should* read
wall-clock; ``cli.py`` *should* print.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from repro.lint.suppress import Suppressions

#: packages (under ``repro``) that run on simulated time and injected RNG
SIM_SCOPED_PACKAGES: Tuple[str, ...] = (
    "sim",
    "mesh",
    "phy",
    "workloads",
    "scenario",
    "baselines",
)

#: modules of ``repro.campaign`` that execute simulation work.  The
#: campaign package straddles the boundary: ``worker`` runs scenarios on
#: simulated time inside pool processes (wall-clock there would break
#: the byte-identical-across-worker-counts contract), while the
#: scheduler/progress/cli side legitimately reads the host clock for
#: ETA lines — so scoping is per-module, not per-package.
CAMPAIGN_SIM_MODULES: Tuple[str, ...] = ("worker",)

#: modules of ``repro.obs`` that sit on the simulation side of the fence.
#: The recorder consumes trace events stamped with simulated time and the
#: span core times *simulation* work (its deliberate ``perf_counter``
#: reads carry per-line suppressions with rationale); the NDJSON writer
#: and the ``repro-trace`` CLI are operator-side I/O and stay exempt.
OBS_SIM_MODULES: Tuple[str, ...] = ("recorder", "spans")

#: modules of ``repro.monitor`` whose classes are documented as shared
#: across threads (see docs/ARCHITECTURE.md, "Threading model"): the
#: server object and everything hanging off it is touched by HTTP
#: handler threads, the UDP receiver thread and the owner thread alike.
#: Classes in these modules fall under RL100 lock discipline even when
#: the file itself spawns no thread — the threads live elsewhere
#: (``ThreadingHTTPServer``) but the mutations happen here.  Modules
#: *not* listed (``uplink``, ``fleet``, ``alerts``, ``dashboard``,
#: ``store``...) are owner-thread or per-request constructs;
#: ``transport.http``/``transport.mpfront`` are covered by the
#: entry-point trigger instead (they subclass ``IngestTransport``).
MONITOR_SHARED_MODULES: Tuple[str, ...] = (
    "server",
    "registry",
    "ingest",
    "httpapi",
    "stream.hub",
    "transport.base",
    "transport.udp",
)


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name for ``path``, or None for a loose script.

    Walks up while ``__init__.py`` exists, so ``src/repro/sim/engine.py``
    resolves to ``repro.sim.engine`` regardless of the directory the
    linter was invoked from.
    """
    path = path.resolve()
    packages = []
    parent = path.parent
    while (parent / "__init__.py").exists():
        packages.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    if not packages:
        return None  # a loose script, not a module in a package
    if path.stem != "__init__":
        packages.append(path.stem)
    return ".".join(packages)


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    path: Path
    source: str
    tree: ast.Module
    suppressions: Suppressions
    module: Optional[str]

    # -- scoping --------------------------------------------------------------

    @property
    def stem(self) -> str:
        return self.path.stem

    @property
    def is_test_code(self) -> bool:
        """Test modules get a pass on resource-lifecycle pedantry."""
        parts = {part.lower() for part in self.path.parts}
        if "tests" in parts or "test" in parts:
            return True
        return self.stem.startswith("test_") or self.stem == "conftest"

    @property
    def is_library_code(self) -> bool:
        """True for modules inside the installed ``repro`` package."""
        return self.module is not None and (
            self.module == "repro" or self.module.startswith("repro.")
        )

    @property
    def repro_subpackage(self) -> Optional[str]:
        """First package level under ``repro`` (``"sim"``, ``"monitor"``, ...)."""
        if not self.is_library_code:
            return None
        parts = (self.module or "").split(".")
        return parts[1] if len(parts) > 1 else None

    def in_subpackages(self, *names: str) -> bool:
        return self.repro_subpackage in names

    @property
    def is_sim_scoped(self) -> bool:
        """Inside a package (or campaign module) that runs on simulated time."""
        if self.in_subpackages(*SIM_SCOPED_PACKAGES):
            return True
        if self.repro_subpackage == "campaign":
            parts = (self.module or "").split(".")
            return len(parts) > 2 and parts[2] in CAMPAIGN_SIM_MODULES
        if self.repro_subpackage == "obs":
            parts = (self.module or "").split(".")
            return len(parts) > 2 and parts[2] in OBS_SIM_MODULES
        return False

    @property
    def is_thread_shared_scope(self) -> bool:
        """Inside a monitor module documented as shared across threads.

        RL100 normally needs *evidence* of threading in the class itself
        (an entry point, a lock, a ``# guarded-by:``).  For the modules
        listed in :data:`MONITOR_SHARED_MODULES` the threads are created
        by the standard library (``ThreadingHTTPServer``) or by sibling
        modules, so the discipline applies to every class regardless.
        """
        if self.repro_subpackage != "monitor":
            return False
        parts = (self.module or "").split(".")
        return ".".join(parts[2:]) in MONITOR_SHARED_MODULES
