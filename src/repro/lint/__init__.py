"""reprolint — AST-based determinism & resource-safety linter.

The repo's headline claims (EXPERIMENTS.md E1-E12, dashboard fidelity vs
ground truth) rest on simulation runs being bit-reproducible.  The
invariants that make them so — injected :class:`random.Random` streams
instead of the global RNG, sim-time instead of wall-clock inside
simulation-scoped packages, explicit flush/close on metrics stores — are
easy to break silently in review.  This package enforces them statically,
with a plain :mod:`ast` walk, no third-party dependencies.

Rules (see docs/STATIC_ANALYSIS.md for the full rationale):

======  ==================================================================
RL001   no wall-clock (``time.time``/``monotonic``/``perf_counter``/
        ``datetime.now``/``time.sleep``) in simulation-scoped packages
RL002   no module-level/global RNG (``random.random()``, unseeded
        ``random.Random()``, ``random.SystemRandom``)
RL003   no float ``==`` / ``!=`` comparisons in ``phy`` / ``sim``
RL004   no mutable default arguments
RL005   no ``print()`` in library code outside ``cli.py``/``dashboard.py``
RL006   metrics stores constructed in non-test code must be ``close()``d
        or used via a context manager
RL000   (meta) unparseable file, malformed suppression, or a suppression
        without a rationale
======  ==================================================================

A violating line can be suppressed — with a mandatory rationale — via::

    something_flagged()  # reprolint: allow[RL003] -- exact sentinel compare

Entry points: the ``repro-lint`` console script (:mod:`repro.lint.cli`)
and :func:`run_lint` for programmatic use (the test suite's meta-test
runs it over the shipped tree).
"""

from repro.lint.context import FileContext
from repro.lint.engine import LintReport, iter_python_files, lint_file, run_lint
from repro.lint.registry import Rule, RuleRegistry, default_registry
from repro.lint.suppress import Suppressions
from repro.lint.violation import Violation

__all__ = [
    "FileContext",
    "LintReport",
    "Rule",
    "RuleRegistry",
    "Suppressions",
    "Violation",
    "default_registry",
    "iter_python_files",
    "lint_file",
    "run_lint",
]
