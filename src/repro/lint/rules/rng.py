"""RL002 — no module-level / global RNG use.

Every stochastic subsystem must draw from an injected, seeded
:class:`random.Random` (the :class:`~repro.sim.rng.RngRegistry` streams),
so that adding a consumer never perturbs the draws seen by existing
ones.  ``random.random()`` et al. share one hidden global stream —
import order becomes part of the seed — and an argument-less
``random.Random()`` seeds from the OS.  Both make "same seed, same
result" a lie.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import register
from repro.lint.violation import Violation

#: module-level functions of :mod:`random` that draw from the global stream
_GLOBAL_RNG_FUNCS = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gammavariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}


@register
class GlobalRngRule:
    rule_id = "RL002"
    title = "no global or unseeded RNG"

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                message = self._call_problem(node)
                if message:
                    yield self._violation(context, node, message)
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _GLOBAL_RNG_FUNCS:
                        yield self._violation(
                            context,
                            node,
                            f"importing {alias.name!r} from random binds the "
                            "global RNG stream; inject a random.Random instead",
                        )

    def _call_problem(self, node: ast.Call) -> str:
        func = node.func
        if not (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)):
            return ""
        if func.value.id != "random":
            return ""
        if func.attr in _GLOBAL_RNG_FUNCS:
            return (
                f"random.{func.attr}() draws from the process-global RNG; "
                "inject a seeded random.Random (see repro.sim.rng.RngRegistry)"
            )
        if func.attr == "Random" and not node.args and not node.keywords:
            return (
                "random.Random() without a seed argument seeds from the OS; "
                "pass an explicit seed or inject a registry stream"
            )
        if func.attr == "SystemRandom":
            return "random.SystemRandom is nondeterministic by construction"
        return ""

    def _violation(self, context: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=str(context.path),
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            message=message,
        )
