"""RL102 — ``.acquire()`` must be paired with ``try``/``finally``.

A bare ``lock.acquire()`` followed by straight-line code leaks the lock
on the first exception between acquire and release: every thread that
touches the lock afterwards blocks forever, which in a monitoring
server means ingest silently stops.  ``with lock:`` is the idiom;
``acquire()`` immediately followed by ``try: ... finally: release()``
is accepted for the rare case that needs conditional acquisition or a
timeout.

Accepted shapes::

    with self._lock: ...                    # preferred

    self._lock.acquire()
    try:
        ...
    finally:
        self._lock.release()                # canonical manual pairing

    self._lock.acquire(timeout=...)         # anywhere inside a try whose
    try: ... finally: self._lock.release()  # finalbody releases the same
                                            # receiver

Anything else — acquire with no try/finally on the same receiver —
is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set

from repro.lint.context import FileContext
from repro.lint.registry import register
from repro.lint.violation import Violation


def _receiver_of(call: ast.Call, op: str) -> str:
    """Source text of ``X`` in ``X.<op>()``, or '' when not that shape."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == op:
        try:
            return ast.unparse(func.value)
        except Exception:  # pragma: no cover - unparse is total on valid ASTs
            return ""
    return ""


def _released_in_finally(try_stmt: ast.Try, receiver: str) -> bool:
    for stmt in try_stmt.finalbody:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and _receiver_of(node, "release") == receiver:
                return True
    return False


def _stmt_blocks(tree: ast.AST):
    for node in ast.walk(tree):
        for _field, value in ast.iter_fields(node):
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                yield value


@register
class BareAcquireRule:
    rule_id = "RL102"
    title = "bare .acquire() without try/finally pairing"

    rationale = (
        "lock.acquire() not paired with try/finally leaks the lock on the\n"
        "first exception raised before release() — after which every thread\n"
        "that needs the lock blocks forever and ingest silently stops.\n"
        "Use 'with lock:' (it pairs acquire/release on all paths), or when\n"
        "conditional/timeout acquisition is genuinely needed, follow the\n"
        "acquire immediately with try: ... finally: lock.release()."
    )
    example_bad = (
        "self._lock.acquire()\n"
        "self._count += 1   # raises? the lock is never released\n"
        "self._lock.release()\n"
    )
    example_good = (
        "with self._lock:\n"
        "    self._count += 1\n"
        "\n"
        "# or, when acquire(timeout=...) is required:\n"
        "self._lock.acquire()\n"
        "try:\n"
        "    self._count += 1\n"
        "finally:\n"
        "    self._lock.release()\n"
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        if context.is_test_code:
            return
        acquires: List[ast.Call] = [
            node
            for node in ast.walk(context.tree)
            if isinstance(node, ast.Call) and _receiver_of(node, "acquire")
        ]
        if not acquires:
            return
        safe: Set[int] = set()
        # Shape 1: acquire anywhere inside a try whose finalbody releases
        # the same receiver.
        for try_stmt in ast.walk(context.tree):
            if not isinstance(try_stmt, ast.Try):
                continue
            for stmt in try_stmt.body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        receiver = _receiver_of(node, "acquire")
                        if receiver and _released_in_finally(try_stmt, receiver):
                            safe.add(id(node))
        # Shape 2: acquire as a statement immediately followed by such a try.
        for block in _stmt_blocks(context.tree):
            for index, stmt in enumerate(block):
                if not isinstance(stmt, ast.Expr) or not isinstance(
                    stmt.value, ast.Call
                ):
                    continue
                receiver = _receiver_of(stmt.value, "acquire")
                if not receiver:
                    continue
                follow = block[index + 1] if index + 1 < len(block) else None
                if isinstance(follow, ast.Try) and _released_in_finally(
                    follow, receiver
                ):
                    safe.add(id(stmt.value))
        for call in acquires:
            if id(call) in safe:
                continue
            receiver = _receiver_of(call, "acquire")
            yield Violation(
                path=str(context.path),
                line=call.lineno,
                col=call.col_offset,
                rule_id=self.rule_id,
                message=(
                    f"bare {receiver}.acquire() without try/finally pairing; "
                    f"use 'with {receiver}:' or follow the acquire with "
                    f"try: ... finally: {receiver}.release()"
                ),
            )
