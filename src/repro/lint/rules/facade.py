"""RL007 — tests and benchmarks import public names through the facade.

:mod:`repro.api` is the supported surface; everything in its ``__all__``
is covered by the compatibility promise.  When a test or benchmark
imports one of those names from the implementation module instead
(``from repro.monitor.server import MonitorServer``), it silently pins
the internal layout: the next refactor breaks it even though the public
name never moved.  The rule flags exactly those imports.  Imports of
genuinely internal names (helpers, private classes) are untouched — code
that *means* to test internals still can.

Scope: test code and out-of-package scripts (benchmarks, examples).
Library modules under ``repro`` are exempt; the implementation has to
import itself deeply, and making ``repro.api`` import-cycle-free
requires it.

``_FACADE_NAMES`` is a hardcoded copy of ``repro.api.__all__`` so the
linter stays purely static (importing :mod:`repro.api` would drag the
whole stack — SQLite, HTTP server — into every lint run).  A meta-test
asserts the copy equals the real ``__all__``; update both together.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator

from repro.lint.context import FileContext
from repro.lint.registry import register
from repro.lint.violation import Violation

#: Mirror of ``repro.api.__all__`` (kept in sync by a meta-test).
_FACADE_NAMES: FrozenSet[str] = frozenset(
    {
        "__version__",
        "ReproError",
        "Simulator",
        "LoRaParams",
        "time_on_air",
        "Channel",
        "ChannelConfig",
        "Reception",
        "CollisionModel",
        "FrameOnAir",
        "LinkModel",
        "PathLossParams",
        "PropagationModel",
        "ReachabilityIndex",
        "GridReachabilityIndex",
        "BruteForceReachability",
        "LinkBudgetCache",
        "Topology",
        "Placement",
        "make_topology",
        "MeshConfig",
        "MeshNode",
        "Packet",
        "PacketType",
        "BROADCAST",
        "run_scenario",
        "Scenario",
        "ScenarioConfig",
        "ScenarioResult",
        "GroundTruth",
        "MonitorMode",
        "WorkloadSpec",
        "MobilitySpec",
        "FaultSchedule",
        "NodeCrash",
        "LinkDegradation",
        "BatteryDepletion",
        "CampaignSpec",
        "RunSpec",
        "CampaignPlan",
        "CampaignRunner",
        "aggregate_report",
        "Direction",
        "PacketRecord",
        "StatusRecord",
        "RecordBatch",
        "MonitorClient",
        "MonitorClientConfig",
        "Codec",
        "JsonCodec",
        "BinaryCodec",
        "resolve_codec",
        "codec_for_content_type",
        "OutOfBandUplink",
        "InBandUplink",
        "ReliableInBandUplink",
        "GatewayBridge",
        "HttpIngestClient",
        "UdpIngestClient",
        "IngestTransport",
        "HttpIngestTransport",
        "UdpIngestTransport",
        "MultiProcessIngestFront",
        "SequenceGapTracker",
        "TelemetryGapAccountant",
        "MonitorServer",
        "BackpressurePolicy",
        "IngestResult",
        "ServerSelfMetrics",
        "DEFAULT_NETWORK_ID",
        "NetworkRegistry",
        "NetworkShard",
        "fleet_overview",
        "network_tile",
        "MetricsStore",
        "SqliteMetricsStore",
        "sqlite_store_factory",
        "Dashboard",
        "Alert",
        "AlertEngine",
        "NodeDelta",
        "MonitoringHttpServer",
        "schema_document",
        "STREAM_SCHEMA",
        "StreamEvent",
        "encode_event",
        "decode_event",
        "StreamHub",
        "StreamSubscription",
        "SseStreamClient",
        "IncrementalRollup",
        "FlightRecorder",
        "SpanProfiler",
        "export_trace",
        "read_trace",
        "replay_into_recorder",
    }
)

#: modules whose re-exports are part of the supported surface themselves
_ALLOWED_MODULES = ("repro", "repro.api")


@register
class FacadeBypassRule:
    rule_id = "RL007"
    title = "import public names via repro.api"

    def check(self, context: FileContext) -> Iterator[Violation]:
        # Library code must deep-import itself; everyone else goes
        # through the facade for names the facade exports.
        if context.is_library_code and not context.is_test_code:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.level or node.module is None:  # relative import
                continue
            module = node.module
            if module in _ALLOWED_MODULES or not module.startswith("repro."):
                continue
            for alias in node.names:
                if alias.name in _FACADE_NAMES:
                    yield Violation(
                        path=str(context.path),
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id=self.rule_id,
                        message=(
                            f"{alias.name!r} is public API: import it from "
                            f"repro.api, not {module} (internal layout)"
                        ),
                    )
