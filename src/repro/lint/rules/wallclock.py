"""RL001 — no wall-clock reads in simulation-scoped packages.

Simulation code advances on :attr:`Simulator.now`; a single
``time.time()`` (or worse, ``time.sleep()``) couples results to the
host machine and breaks bit-reproducibility of E1-E12.  Monitoring /
server code legitimately reads wall-clock (e.g. flush-latency
self-metrics in ``monitor/sqlitestore.py``), which is why this rule is
*scoped* to the packages that run on simulated time rather than global.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import SIM_SCOPED_PACKAGES, FileContext
from repro.lint.registry import register
from repro.lint.violation import Violation

#: attribute accessed on one of the clock modules/classes
_BANNED_ATTRS = {
    "time": {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    },
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}


@register
class WallClockRule:
    rule_id = "RL001"
    title = "no wall-clock in simulation-scoped packages"

    def check(self, context: FileContext) -> Iterator[Violation]:
        if not context.is_sim_scoped:
            return
        scope = ", ".join(SIM_SCOPED_PACKAGES)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.attr in _BANNED_ATTRS.get(func.value.id, ())
                ):
                    yield Violation(
                        path=str(context.path),
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id=self.rule_id,
                        message=(
                            f"wall-clock call {func.value.id}.{func.attr}() in a "
                            f"simulation-scoped package ({scope}); use sim time "
                            "(Simulator.now) or an injected clock"
                        ),
                    )
            elif isinstance(node, ast.ImportFrom) and node.module in _BANNED_ATTRS:
                banned = _BANNED_ATTRS[node.module]
                for alias in node.names:
                    if alias.name in banned:
                        yield Violation(
                            path=str(context.path),
                            line=node.lineno,
                            col=node.col_offset,
                            rule_id=self.rule_id,
                            message=(
                                f"importing wall-clock {alias.name!r} from "
                                f"{node.module!r} in a simulation-scoped package; "
                                "use sim time (Simulator.now) or an injected clock"
                            ),
                        )
