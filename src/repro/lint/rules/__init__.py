"""Built-in reprolint rules.

Importing this package registers every rule on the default registry
(see :func:`repro.lint.registry.default_registry`).  One module per
rule; each module's docstring carries the rule's rationale.
"""

from repro.lint.rules import (  # noqa: F401  - imported for registration
    bare_acquire,
    blocking_under_lock,
    facade,
    floatcmp,
    lifecycle,
    mutable_defaults,
    print_calls,
    rng,
    shared_state,
    thread_lifecycle,
    wallclock,
)

__all__ = [
    "bare_acquire",
    "blocking_under_lock",
    "facade",
    "floatcmp",
    "lifecycle",
    "mutable_defaults",
    "print_calls",
    "rng",
    "shared_state",
    "thread_lifecycle",
    "wallclock",
]
