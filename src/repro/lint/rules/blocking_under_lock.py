"""RL101 — no blocking calls while holding a lock.

A lock in the monitor tier serialises *bookkeeping* — counter bumps,
deque rotation, LRU reordering — all sub-microsecond.  The moment a
critical section blocks (socket I/O, ``queue.get``, ``thread.join``,
``time.sleep``, a sqlite statement), every handler thread queues up
behind it and ingest throughput collapses to the latency of the slow
call; a ``join`` under a lock the joined thread needs is a deadlock,
not just a stall.  The fix is always the same shape: snapshot state
under the lock, do the blocking work outside, re-enter the lock to
record the result.

Detection is by callee name with light receiver/keyword context, so it
is deliberately conservative:

* ``sleep`` — any receiver;
* socket ops — ``recv``/``recvfrom``/``recv_into``/``recvfrom_into``/
  ``accept``/``connect``/``sendall``/``sendto``;
* ``join`` — only on receivers whose name looks thread/process-like
  (``", ".join(...)`` stays legal);
* ``get``/``put`` — when called with ``block=``/``timeout=`` or on a
  queue-named receiver (``dict.get(k, default)`` stays legal);
* sqlite — ``execute``/``executemany``/``executescript``/``commit``;
* ``wait`` — ``Event``/``Condition``/process waits.
"""

from __future__ import annotations

import re
from typing import Iterator, Optional

from repro.lint.analysis import class_models
from repro.lint.analysis.model import CallSite
from repro.lint.context import FileContext
from repro.lint.registry import register
from repro.lint.violation import Violation

_SOCKET_OPS = frozenset(
    {"recv", "recvfrom", "recv_into", "recvfrom_into", "accept", "connect", "sendall", "sendto"}
)
_SQLITE_OPS = frozenset({"execute", "executemany", "executescript", "commit"})
_THREADISH_RECEIVER = re.compile(r"thread|process|proc|worker", re.IGNORECASE)
_QUEUEISH_RECEIVER = re.compile(r"queue|fifo", re.IGNORECASE)


def _blocking_reason(call: CallSite) -> Optional[str]:
    name, receiver = call.name, call.receiver or ""
    if name == "sleep":
        return "sleep() stalls every thread waiting on the lock"
    if name in _SOCKET_OPS:
        return f"socket .{name}() can block indefinitely"
    if name in _SQLITE_OPS:
        return f".{name}() runs sqlite I/O"
    if name == "wait":
        return ".wait() blocks until signalled"
    if name == "join" and _THREADISH_RECEIVER.search(receiver):
        return (
            f"joining '{receiver}' under a lock deadlocks if that thread "
            "needs the same lock to exit"
        )
    if name in ("get", "put"):
        if call.keywords & {"block", "timeout"}:
            return f"queue .{name}(block=/timeout=) blocks"
        if _QUEUEISH_RECEIVER.search(receiver):
            return f"queue .{name}() blocks when the queue is empty/full"
    return None


@register
class BlockingUnderLockRule:
    rule_id = "RL101"
    title = "blocking call while holding a lock"

    rationale = (
        "Critical sections must stay O(bookkeeping).  A blocking call —\n"
        "socket I/O, queue.get/put, thread.join, sleep, sqlite execute —\n"
        "made while a lock is held serialises every other thread behind a\n"
        "latency it cannot control, and a join on a thread that needs the\n"
        "same lock to exit is a guaranteed deadlock.  Snapshot state under\n"
        "the lock, block outside it, re-enter to record the result."
    )
    example_bad = (
        "def stop(self) -> None:\n"
        "    with self._lock:\n"
        "        self._running = False\n"
        "        self._thread.join(timeout=5.0)  # RL101: receiver thread\n"
        "        # may be stuck in submit() waiting for self._lock\n"
    )
    example_good = (
        "def stop(self) -> None:\n"
        "    with self._lock:\n"
        "        self._running = False\n"
        "        thread, self._thread = self._thread, None\n"
        "    if thread is not None:\n"
        "        thread.join(timeout=5.0)  # outside the lock\n"
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        if context.is_test_code:
            return
        for model in class_models(context):
            for method in model.methods.values():
                for call in method.calls:
                    if not call.locks:
                        continue
                    reason = _blocking_reason(call)
                    if reason is None:
                        continue
                    locks = ", ".join(f"self.{name}" for name in sorted(call.locks))
                    yield Violation(
                        path=str(context.path),
                        line=call.line,
                        col=call.col,
                        rule_id=self.rule_id,
                        message=(
                            f"{model.name}.{call.method}() calls "
                            f".{call.name}() while holding {locks}: {reason}"
                        ),
                    )
