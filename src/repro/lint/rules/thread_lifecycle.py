"""RL103 — threads need an explicit daemon flag and a join path.

Two distinct failure modes, one rule:

**No ``daemon=``.**  The default is inherited from the creating thread,
so whether a forgotten thread blocks interpreter exit depends on *who*
created it — a property the author should pin down explicitly at the
construction site, whichever value they choose.

**Never joined.**  A receiver/serve thread that is started but never
joined leaks past ``close()``: tests pass while the thread still runs,
sockets stay bound, and shutdown ordering bugs hide until production.
A thread stored on ``self`` must be joined from a lifecycle method
(``close``/``stop``/``shutdown``/``__exit__``/``__del__``); a thread
bound to a local must be joined in the same scope.  The recommended
shutdown shape — snapshot ``self._thread`` to a local under the lock,
join the local outside it — satisfies both this rule and RL101.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.analysis import class_models
from repro.lint.context import FileContext
from repro.lint.registry import register
from repro.lint.violation import Violation


@register
class ThreadLifecycleRule:
    rule_id = "RL103"
    title = "thread without explicit daemon= or without a join path"

    rationale = (
        "threading.Thread inherits daemon-ness from its creator, so whether\n"
        "a forgotten thread blocks interpreter exit depends on who called\n"
        "you — pass daemon= explicitly.  And a thread that is never joined\n"
        "outlives close(): sockets stay bound, shutdown races hide.  Store\n"
        "the thread, and join it in close()/stop() (snapshot to a local\n"
        "under your lock, join outside it — see RL101)."
    )
    example_bad = (
        "def start(self) -> None:\n"
        "    self._thread = threading.Thread(target=self._serve)  # RL103 x2\n"
        "    self._thread.start()\n"
        "# ... no close()/stop() ever joins self._thread\n"
    )
    example_good = (
        "def start(self) -> None:\n"
        "    self._thread = threading.Thread(target=self._serve, daemon=True)\n"
        "    self._thread.start()\n"
        "\n"
        "def stop(self) -> None:\n"
        "    with self._lock:\n"
        "        thread, self._thread = self._thread, None\n"
        "    if thread is not None:\n"
        "        thread.join(timeout=5.0)\n"
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        if context.is_test_code:
            return
        for model in class_models(context):
            joins_in_lifecycle = model.lifecycle_joins_threads()
            for creation in model.thread_creations:
                if not creation.has_daemon_kw:
                    yield Violation(
                        path=str(context.path),
                        line=creation.line,
                        col=creation.col,
                        rule_id=self.rule_id,
                        message=(
                            f"{model.name}.{creation.method}() creates a "
                            "Thread without an explicit daemon= flag; "
                            "daemon-ness is inherited from the creator — "
                            "pin it down"
                        ),
                    )
                if creation.stored_attr is not None:
                    if not joins_in_lifecycle:
                        yield Violation(
                            path=str(context.path),
                            line=creation.line,
                            col=creation.col,
                            rule_id=self.rule_id,
                            message=(
                                f"thread stored on self.{creation.stored_attr} "
                                f"is never joined in a lifecycle method of "
                                f"{model.name} (close/stop/shutdown/__exit__)"
                            ),
                        )
                elif creation.local_name is not None:
                    if not creation.joined_locally:
                        yield Violation(
                            path=str(context.path),
                            line=creation.line,
                            col=creation.col,
                            rule_id=self.rule_id,
                            message=(
                                f"thread '{creation.local_name}' created in "
                                f"{model.name}.{creation.method}() is never "
                                "joined in that scope"
                            ),
                        )
                else:
                    yield Violation(
                        path=str(context.path),
                        line=creation.line,
                        col=creation.col,
                        rule_id=self.rule_id,
                        message=(
                            f"fire-and-forget thread in {model.name}."
                            f"{creation.method}(): neither stored for a "
                            "lifecycle join nor joined locally"
                        ),
                    )
