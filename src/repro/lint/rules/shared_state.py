"""RL100 — shared mutable attributes need a consistent lock.

The monitor tier is multi-threaded by construction:
``ThreadingHTTPServer`` runs each request on its own thread, the UDP
transport owns a receiver thread, and the multi-process front drains
from whatever thread calls ``collect()``.  Any ``self.<attr>`` that one
of those threads *writes* and another thread touches is a data race
unless every access happens under one common lock.

The rule applies to a class when any of these hold:

* it has thread entry points (``threading.Thread(target=self.m)``
  targets, ``run`` on Thread subclasses, ``do_*`` request handlers,
  ``IngestTransport`` callbacks) — the class demonstrably runs
  off-thread code;
* it declares lock attributes or ``# guarded-by:`` annotations — the
  author already claims a discipline, so it is checked;
* its module is listed in
  :data:`repro.lint.context.MONITOR_SHARED_MODULES` — documented
  thread-shared monitor state whose threads live in the stdlib or in
  sibling modules, invisible to a per-file analysis.

For each attribute written outside construction the rule demands one
of: a single lock held at **every** non-construction access, a
``# guarded-by:`` annotation on the attribute's defining line (bare
name = a lock of this class, verified; dotted name = a documented
external guard, trusted), or a per-line suppression with a rationale
(the GIL-atomic escape hatch).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.lint.analysis import Access, ClassModel, class_models
from repro.lint.context import FileContext
from repro.lint.registry import register
from repro.lint.violation import Violation


@register
class SharedStateLockRule:
    rule_id = "RL100"
    title = "shared mutable attribute accessed without a common lock"

    rationale = (
        "Monitor-tier objects are touched by HTTP handler threads, the UDP\n"
        "receiver thread and the owner thread at once.  An attribute written\n"
        "by one thread and read or written by another without a common lock\n"
        "is a data race: lost counter increments, torn LRU order, deques\n"
        "observed mid-mutation.  Guard every access with one lock, annotate\n"
        "the attribute '# guarded-by: <lock>' (dotted names document guards\n"
        "external to the class), or suppress the single access that is\n"
        "deliberately lock-free with a GIL-atomicity rationale."
    )
    example_bad = (
        "class Registry:\n"
        "    def __init__(self) -> None:\n"
        "        self._shards = {}\n"
        "\n"
        "    def handle_batch(self, batch):  # called from handler threads\n"
        "        self._shards[batch.network_id] = batch  # RL100\n"
    )
    example_good = (
        "class Registry:\n"
        "    def __init__(self) -> None:\n"
        "        self._lock = threading.Lock()\n"
        "        self._shards = {}  # guarded-by: _lock\n"
        "\n"
        "    def handle_batch(self, batch):\n"
        "        with self._lock:\n"
        "            self._shards[batch.network_id] = batch\n"
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        if context.is_test_code:
            return
        for model in class_models(context):
            yield from self._check_class(context, model)

    def _check_class(
        self, context: FileContext, model: ClassModel
    ) -> Iterator[Violation]:
        has_evidence = bool(
            model.direct_entry_points or model.lock_attrs or model.guards
        )
        if not has_evidence and not context.is_thread_shared_scope:
            return
        reachable = model.entry_reachable()
        grouped = model.accesses_by_attr()
        for attr in sorted(model.shared_written_attrs()):
            accesses = [a for a in grouped.get(attr, []) if not a.in_init]
            if not accesses:
                continue
            guard = model.guards.get(attr)
            if guard is not None:
                yield from self._check_annotated(context, model, attr, guard, accesses)
                continue
            # Without an annotation the rule only bites when the class is
            # in a documented thread-shared module or the attribute is
            # actually touched by entry-reachable (off-thread) code.
            if not context.is_thread_shared_scope and not any(
                a.method in reachable for a in accesses
            ):
                continue
            yield from self._check_unannotated(context, model, attr, accesses)

    def _check_annotated(
        self,
        context: FileContext,
        model: ClassModel,
        attr: str,
        guard: str,
        accesses: List[Access],
    ) -> Iterator[Violation]:
        if "." in guard:
            return  # documented external guard; per-file analysis trusts it
        if guard not in model.lock_attrs:
            yield self._violation(
                context,
                model.guard_lines.get(attr, model.node.lineno),
                0,
                f"'{model.name}.{attr}' is annotated '# guarded-by: {guard}' "
                f"but '{guard}' is not a lock attribute of {model.name}",
            )
            return
        for access in accesses:
            if guard not in access.locks:
                yield self._violation(
                    context,
                    access.line,
                    access.col,
                    f"'{model.name}.{attr}' is annotated '# guarded-by: "
                    f"{guard}' but {access.method}() accesses it without "
                    f"holding self.{guard}",
                )

    def _check_unannotated(
        self,
        context: FileContext,
        model: ClassModel,
        attr: str,
        accesses: List[Access],
    ) -> Iterator[Violation]:
        locked = [a for a in accesses if a.locks]
        if not locked:
            # Wholly unguarded: flag the writes (the actionable sites).
            for access in accesses:
                if access.is_write:
                    yield self._violation(
                        context,
                        access.line,
                        access.col,
                        f"'{model.name}.{attr}' is written from "
                        f"{access.method}() with no lock held and the class "
                        "is shared across threads; guard it with a lock or "
                        "annotate '# guarded-by: <lock>'",
                    )
            return
        common = frozenset.intersection(*[a.locks for a in locked])
        if not common:
            first = accesses[0]
            yield self._violation(
                context,
                first.line,
                first.col,
                f"'{model.name}.{attr}' is guarded inconsistently — no "
                "single lock is held at all of its accesses",
            )
            return
        for access in accesses:
            if not (access.locks & common):
                guard_name = sorted(common)[0]
                yield self._violation(
                    context,
                    access.line,
                    access.col,
                    f"'{model.name}.{attr}' is elsewhere guarded by "
                    f"self.{guard_name} but {access.method}() accesses it "
                    "without holding it",
                )

    def _violation(
        self, context: FileContext, line: int, col: int, message: str
    ) -> Violation:
        return Violation(
            path=str(context.path),
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
        )
