"""RL005 — no ``print()`` in library code.

Library modules report through return values, the trace log or the
dashboard; stray prints interleave with benchmark output and corrupt
machine-parsed experiment logs.  ``cli.py`` and ``dashboard.py`` are the
user-facing surfaces and may print; scripts outside the ``repro``
package (benchmarks, examples) are exempt by scoping.  Docstring
examples are naturally exempt — a ``print`` inside a string literal is
not a call node.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import register
from repro.lint.violation import Violation

#: module stems (anywhere under ``repro``) allowed to print
_PRINTING_STEMS = {"cli", "dashboard", "__main__"}


@register
class PrintInLibraryRule:
    rule_id = "RL005"
    title = "no print() in library code"

    def check(self, context: FileContext) -> Iterator[Violation]:
        if not context.is_library_code or context.stem in _PRINTING_STEMS:
            return
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield Violation(
                    path=str(context.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule_id,
                    message=(
                        "print() in library code; return data, raise, or log "
                        "via the trace — only cli.py/dashboard.py print"
                    ),
                )
