"""RL004 — no mutable default arguments.

A mutable default is evaluated once at ``def`` time and shared by every
call.  In a simulator that is not a style nit: a shared default list of
workloads or neighbors leaks state *between scenario runs in the same
process*, which is precisely the cross-run contamination the seeded-RNG
architecture exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.context import FileContext
from repro.lint.registry import register
from repro.lint.violation import Violation

_MUTABLE_CONSTRUCTORS = {
    "Counter",
    "OrderedDict",
    "bytearray",
    "defaultdict",
    "deque",
    "dict",
    "list",
    "set",
}


def _mutable_kind(node: Optional[ast.expr]) -> str:
    """Human name of the mutable literal/constructor, or '' if safe."""
    if node is None:
        return ""
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in _MUTABLE_CONSTRUCTORS:
            return node.func.id
    return ""


@register
class MutableDefaultRule:
    rule_id = "RL004"
    title = "no mutable default arguments"

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            name = getattr(node, "name", "<lambda>")
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                kind = _mutable_kind(default)
                if kind:
                    yield Violation(
                        path=str(context.path),
                        line=default.lineno,
                        col=default.col_offset,
                        rule_id=self.rule_id,
                        message=(
                            f"mutable default ({kind}) in {name}(); evaluated "
                            "once and shared across calls — default to None and "
                            "construct inside the body"
                        ),
                    )
