"""RL003 — no float ``==`` / ``!=`` in ``phy`` / ``sim``.

RSSI, SNR, path loss and event timestamps are accumulated floats;
comparing them for exact equality is either a latent bug (two
mathematically equal expressions rounding differently) or an exact
sentinel check that deserves an explicit suppression rationale at the
site (e.g. "0.0 means the caller asked for a reset").

Static analysis cannot type arbitrary names, so the rule flags
comparisons where an operand is *syntactically* float-valued: a float
literal, a unary ``-`` of one, or a ``float(...)`` call.  That is
exactly the shape of every real offender found in this tree.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import register
from repro.lint.violation import Violation


def _is_floaty(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_floaty(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    if isinstance(node, ast.BinOp):
        return _is_floaty(node.left) or _is_floaty(node.right)
    return False


@register
class FloatEqualityRule:
    rule_id = "RL003"
    title = "no float equality comparisons in phy/sim"

    def check(self, context: FileContext) -> Iterator[Violation]:
        if not context.in_subpackages("phy", "sim"):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floaty(left) or _is_floaty(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield Violation(
                        path=str(context.path),
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id=self.rule_id,
                        message=(
                            f"float {symbol} comparison; use math.isclose / an "
                            "epsilon, or suppress with a rationale if the exact "
                            "value is a sentinel"
                        ),
                    )
