"""RL006 — metrics stores must be closed or used as context managers.

:class:`SqliteMetricsStore` buffers writes; records sit in memory until
``flush()``/``close()``.  A store that is constructed and dropped loses
the tail of the telemetry — experiments "pass" with truncated data.
Both store types support ``with`` and ``close()`` (the in-memory
store's close is a no-op, kept so backends stay drop-in swappable), so
non-test code has no excuse not to pin down who closes the store.

The rule accepts any of these as evidence of a managed lifecycle:

* construction inside a ``with`` item;
* the constructed value returned, or passed directly to another call
  (ownership transfer to the caller/callee);
* assignment to ``self.<attr>`` inside a class that itself defines
  ``close`` or ``__exit__`` (the owner propagates the close);
* assignment to a local that is later ``close()``d, used in a ``with``,
  returned, stored on ``self``, or handed to another call within the
  same scope.

Test code is exempt — fixtures are torn down with the process.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Union

from repro.lint.context import FileContext
from repro.lint.registry import register
from repro.lint.violation import Violation

_STORE_NAMES = {"MetricsStore", "SqliteMetricsStore"}

_ScopeNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Module]


def _callee_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


def _build_parents(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _enclosing(node: ast.AST, parents: Dict[ast.AST, ast.AST], kinds) -> Optional[ast.AST]:
    current = parents.get(node)
    while current is not None:
        if isinstance(current, kinds):
            return current
        current = parents.get(current)
    return None


def _class_manages_lifecycle(class_node: ast.ClassDef) -> bool:
    return any(
        isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
        and member.name in ("close", "__exit__", "__del__")
        for member in class_node.body
    )


def _name_used(tree: ast.AST, name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name for node in ast.walk(tree)
    )


def _scope_has_evidence(scope: ast.AST, name: str) -> bool:
    """Does ``scope`` close / hand off the store bound to ``name``?"""
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("close", "__exit__")
                and isinstance(func.value, ast.Name)
                and func.value.id == name
            ):
                return True  # name.close()
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if _name_used(arg, name):
                    return True  # handed to another call
        elif isinstance(node, ast.withitem):
            if _name_used(node.context_expr, name):
                return True  # with name: / with closing(name):
        elif isinstance(node, ast.Return) and node.value is not None:
            if _name_used(node.value, name):
                return True  # ownership returned to the caller
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if node.value is not None and _name_used(node.value, name):
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        return True  # re-homed onto an object attribute
        elif isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
            if _name_used(node.value, name):
                return True  # generator hands the store to its consumer
    return False


@register
class StoreLifecycleRule:
    rule_id = "RL006"
    title = "metrics stores must be closed or context-managed"

    def check(self, context: FileContext) -> Iterator[Violation]:
        if context.is_test_code:
            return
        parents = _build_parents(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call) or _callee_name(node) not in _STORE_NAMES:
                continue
            if not self._is_managed(node, parents):
                yield Violation(
                    path=str(context.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule_id,
                    message=(
                        f"{_callee_name(node)} constructed without a managed "
                        "lifecycle; use 'with ...' or ensure close() is called"
                    ),
                )

    def _is_managed(self, call: ast.Call, parents: Dict[ast.AST, ast.AST]) -> bool:
        node: ast.AST = call
        parent = parents.get(node)
        # step through value-forwarding wrappers: `a if c else Store()`,
        # `existing or Store()`
        while isinstance(parent, (ast.IfExp, ast.BoolOp)):
            node = parent
            parent = parents.get(node)
        if parent is None:
            return False
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, ast.Call):
            return True  # direct argument: callee takes ownership
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True  # caller/consumer takes ownership
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets if isinstance(parent, ast.Assign) else [parent.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute):
                    class_node = _enclosing(parent, parents, ast.ClassDef)
                    if class_node is not None and _class_manages_lifecycle(class_node):
                        return True
                elif isinstance(target, ast.Name):
                    scope = _enclosing(
                        parent,
                        parents,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                    ) or _module_of(parent, parents)
                    if scope is not None and _scope_has_evidence(scope, target.id):
                        return True
        return False


def _module_of(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> Optional[ast.AST]:
    return _enclosing(node, parents, ast.Module)
