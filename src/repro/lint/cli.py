"""``repro-lint`` — the linter's command-line front end.

Exit codes follow lint convention: 0 clean, 1 violations found, 2 bad
invocation.  ``--format json`` emits a machine-readable report for CI
annotation tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import LintConfigError
from repro.lint.engine import run_lint
from repro.lint.registry import default_registry

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism, resource-safety & concurrency linter "
            "for the repro tree (rules RL001-RL007 and the RL100-RL103 "
            "concurrency pack; see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE_ID",
        help="print a rule's rationale plus a bad/good example and exit",
    )
    return parser


def explain_rule(rule_id: str) -> int:
    """Print why ``rule_id`` exists and what good/bad code looks like."""
    registry = default_registry()
    matches = [r for r in registry.all_rules() if r.rule_id == rule_id]
    if not matches:
        print(
            f"repro-lint: error: unknown rule id {rule_id!r}; "
            f"known: {', '.join(sorted(registry.ids))}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    rule = matches[0]
    print(f"{rule.rule_id} — {rule.title}")
    rationale = getattr(rule, "rationale", None)
    if rationale is None:
        # Pre-RL1xx rules keep their rationale in the module docstring.
        module = sys.modules.get(type(rule).__module__)
        rationale = (module.__doc__ or "").strip() if module else ""
    print()
    print(rationale.strip())
    example_bad = getattr(rule, "example_bad", None)
    if example_bad:
        print()
        print("Bad:")
        for line in example_bad.rstrip().splitlines():
            print(f"    {line}")
    example_good = getattr(rule, "example_good", None)
    if example_good:
        print()
        print("Good:")
        for line in example_good.rstrip().splitlines():
            print(f"    {line}")
    return EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    registry = default_registry()
    if args.explain:
        return explain_rule(args.explain.strip())
    if args.list_rules:
        for rule in registry.all_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return EXIT_CLEAN
    select = [part for part in args.select.split(",") if part.strip()]
    ignore = [part for part in args.ignore.split(",") if part.strip()]
    try:
        report = run_lint(args.paths, registry=registry, select=select, ignore=ignore)
    except LintConfigError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": report.files_checked,
                    "violations": [
                        {
                            "path": violation.path,
                            "line": violation.line,
                            "col": violation.col,
                            "rule": violation.rule_id,
                            "message": violation.message,
                        }
                        for violation in report.sorted()
                    ],
                },
                indent=2,
            )
        )
    else:
        for violation in report.sorted():
            print(violation.render())
    summary = (
        f"repro-lint: {report.files_checked} files, "
        f"{len(report.violations)} violation(s)"
    )
    print(summary, file=sys.stderr)
    return EXIT_CLEAN if report.ok else EXIT_VIOLATIONS


if __name__ == "__main__":
    raise SystemExit(main())
