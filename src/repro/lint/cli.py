"""``repro-lint`` — the linter's command-line front end.

Exit codes follow lint convention: 0 clean, 1 violations found, 2 bad
invocation.  ``--format json`` emits a machine-readable report for CI
annotation tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import LintConfigError
from repro.lint.engine import run_lint
from repro.lint.registry import default_registry

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & resource-safety linter for the repro "
            "tree (rules RL001-RL007; see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    registry = default_registry()
    if args.list_rules:
        for rule in registry.all_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return EXIT_CLEAN
    select = [part for part in args.select.split(",") if part.strip()]
    ignore = [part for part in args.ignore.split(",") if part.strip()]
    try:
        report = run_lint(args.paths, registry=registry, select=select, ignore=ignore)
    except LintConfigError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": report.files_checked,
                    "violations": [
                        {
                            "path": violation.path,
                            "line": violation.line,
                            "col": violation.col,
                            "rule": violation.rule_id,
                            "message": violation.message,
                        }
                        for violation in report.sorted()
                    ],
                },
                indent=2,
            )
        )
    else:
        for violation in report.sorted():
            print(violation.render())
    summary = (
        f"repro-lint: {report.files_checked} files, "
        f"{len(report.violations)} violation(s)"
    )
    print(summary, file=sys.stderr)
    return EXIT_CLEAN if report.ok else EXIT_VIOLATIONS


if __name__ == "__main__":
    raise SystemExit(main())
