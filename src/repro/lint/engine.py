"""File discovery, parsing and rule dispatch.

``run_lint(paths)`` is the whole pipeline: discover ``*.py`` files,
parse each once, parse its suppression comments, run every (selected)
rule, drop violations a suppression excuses, and fold the remainder —
plus any suppression-hygiene problems — into a :class:`LintReport`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.errors import LintConfigError
from repro.lint.context import FileContext, module_name_for
from repro.lint.registry import RuleRegistry, default_registry
from repro.lint.suppress import META_RULE_ID, parse_suppressions
from repro.lint.violation import Violation

#: directories never worth descending into
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hg",
    ".mypy_cache",
    ".pytest_cache",
    ".ruff_cache",
    ".venv",
    "build",
    "dist",
    "node_modules",
    "venv",
}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def sorted(self) -> List[Violation]:
        return sorted(self.violations)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``*.py`` under ``paths`` (files pass through as-is).

    Raises:
        LintConfigError: when a named path does not exist.
    """
    for path in paths:
        if not path.exists():
            raise LintConfigError(f"no such file or directory: {path}")
        if path.is_file():
            yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            relative_parts = set(candidate.relative_to(path).parts[:-1])
            if relative_parts & _SKIP_DIRS:
                continue
            if any(part.endswith(".egg-info") for part in relative_parts):
                continue
            yield candidate


def lint_file(
    path: Path,
    registry: Optional[RuleRegistry] = None,
    select: Iterable[str] = (),
    ignore: Iterable[str] = (),
) -> List[Violation]:
    """Lint one file; unparseable files yield a single RL000 violation."""
    registry = registry if registry is not None else default_registry()
    rules = registry.resolve(select=select, ignore=ignore)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Violation(str(path), 1, 0, META_RULE_ID, f"cannot read file: {exc}")
        ]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                str(path),
                exc.lineno or 1,
                exc.offset or 0,
                META_RULE_ID,
                f"syntax error: {exc.msg}",
            )
        ]
    suppressions = parse_suppressions(source, known_rule_ids=registry.ids)
    context = FileContext(
        path=path,
        source=source,
        tree=tree,
        suppressions=suppressions,
        module=module_name_for(path),
    )
    violations: List[Violation] = [
        Violation(str(path), line, 0, META_RULE_ID, message)
        for line, message in suppressions.problems
    ]
    for rule in rules:
        for violation in rule.check(context):
            if suppressions.allows(violation.line, violation.rule_id):
                continue
            violations.append(violation)
    return violations


def run_lint(
    paths: Sequence[object],
    registry: Optional[RuleRegistry] = None,
    select: Iterable[str] = (),
    ignore: Iterable[str] = (),
) -> LintReport:
    """Lint every Python file under ``paths``; the programmatic entry point."""
    registry = registry if registry is not None else default_registry()
    registry.resolve(select=select, ignore=ignore)  # fail fast on bad ids
    report = LintReport()
    for path in iter_python_files([Path(str(p)) for p in paths]):
        report.files_checked += 1
        report.violations.extend(
            lint_file(path, registry=registry, select=select, ignore=ignore)
        )
    report.violations.sort()
    return report
