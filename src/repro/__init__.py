"""repro — a monitoring system for LoRa mesh networks.

Reproduction of Capella Del Solar, Solé & Freitag, *Towards a Monitoring
System for a LoRa Mesh Network* (ICDCS 2022), as a complete simulated
stack: SX127x-class PHY, LoRaMesher-style distance-vector mesh (plus a
managed-flooding baseline), and — the paper's contribution — a monitoring
client on every node shipping per-packet and node-status telemetry to a
server with a dashboard, alerting and an HTTP API.

Quick start::

    from repro import ScenarioConfig, run_scenario
    from repro.monitor.dashboard import Dashboard

    with run_scenario(ScenarioConfig(n_nodes=16, duration_s=1800)) as result:
        print(Dashboard(result.store).render_text(result.sim.now))

The ``with`` block flushes and closes the monitoring store on exit
(``ScenarioResult`` is a context manager); equivalently, call
``result.close()`` when done.

See README.md for the architecture overview and DESIGN.md for the
experiment index.
"""

from repro.errors import ReproError
from repro.mesh import BROADCAST, MeshConfig, MeshNode, Packet, PacketType
from repro.monitor import (
    Dashboard,
    MetricsStore,
    MonitorClient,
    MonitorClientConfig,
    MonitorServer,
)
from repro.phy import LoRaParams, time_on_air
from repro.scenario import MonitorMode, ScenarioConfig, WorkloadSpec, run_scenario
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "BROADCAST",
    "MeshConfig",
    "MeshNode",
    "Packet",
    "PacketType",
    "Dashboard",
    "MetricsStore",
    "MonitorClient",
    "MonitorClientConfig",
    "MonitorServer",
    "LoRaParams",
    "time_on_air",
    "MonitorMode",
    "ScenarioConfig",
    "WorkloadSpec",
    "run_scenario",
    "Simulator",
    "__version__",
]
