"""Network pathology detection from telemetry alone.

These analyses answer the questions an administrator asks the paper's
dashboard when the network misbehaves — using nothing but the records the
server holds (no access to the simulator's ground truth):

* :func:`congested_relays` — nodes whose retransmission rate and airtime
  share mark them as the bottleneck;
* :func:`hidden_terminal_pairs` — transmitter pairs that share a receiver
  but have no radio link to each other, the classic CSMA failure mode;
* :func:`asymmetric_links` — links heard much better in one direction
  (bad antennas, marginal placements) that break per-hop ACKs;
* :func:`starving_sources` — sources whose PDR is far below the network
  median.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.monitor import metrics
from repro.monitor.storage import MetricsStore


@dataclass(frozen=True)
class CongestedRelay:
    """A node flagged as a congestion bottleneck."""

    node: int
    retransmission_rate: float
    airtime_share: float


def congested_relays(
    store: MetricsStore,
    retx_threshold: float = 0.25,
    airtime_share_threshold: float = 0.10,
) -> List[CongestedRelay]:
    """Nodes with both a high retransmission rate and an outsized share of
    the network's transmit airtime."""
    retx = metrics.retransmission_rate(store)
    airtime = metrics.airtime_by_node(store)
    total_airtime = sum(airtime.values())
    flagged = []
    for node in sorted(airtime):
        share = airtime[node] / total_airtime if total_airtime else 0.0
        rate = retx.get(node, 0.0)
        if math.isnan(rate):
            continue
        if rate >= retx_threshold and share >= airtime_share_threshold:
            flagged.append(
                CongestedRelay(node=node, retransmission_rate=rate, airtime_share=share)
            )
    return flagged


@dataclass(frozen=True)
class HiddenTerminalPair:
    """Two transmitters that contend at a receiver but cannot hear each
    other — CSMA cannot arbitrate them."""

    tx_a: int
    tx_b: int
    shared_receiver: int
    frames_a: int
    frames_b: int


def hidden_terminal_pairs(
    store: MetricsStore,
    min_frames: int = 10,
) -> List[HiddenTerminalPair]:
    """Find potential hidden-terminal pairs from the link evidence.

    A pair (a, b) is flagged when some receiver r hears both (with at
    least ``min_frames`` frames from each) but there is no link evidence
    in either direction between a and b themselves.
    """
    links = metrics.link_quality(store)
    heard_by: Dict[int, Dict[int, int]] = {}
    link_exists: Set[Tuple[int, int]] = set()
    for (tx, rx), quality in links.items():
        link_exists.add((tx, rx))
        heard_by.setdefault(rx, {})[tx] = quality.frames

    pairs: Dict[Tuple[int, int], HiddenTerminalPair] = {}
    for receiver, transmitters in heard_by.items():
        strong = {tx: n for tx, n in transmitters.items() if n >= min_frames}
        ordered = sorted(strong)
        for index, tx_a in enumerate(ordered):
            for tx_b in ordered[index + 1:]:
                if (tx_a, tx_b) in link_exists or (tx_b, tx_a) in link_exists:
                    continue
                key = (tx_a, tx_b)
                if key not in pairs:
                    pairs[key] = HiddenTerminalPair(
                        tx_a=tx_a,
                        tx_b=tx_b,
                        shared_receiver=receiver,
                        frames_a=strong[tx_a],
                        frames_b=strong[tx_b],
                    )
    return [pairs[key] for key in sorted(pairs)]


@dataclass(frozen=True)
class AsymmetricLink:
    """A link whose two directions differ sharply in quality."""

    node_a: int
    node_b: int
    rssi_a_to_b: Optional[float]
    rssi_b_to_a: Optional[float]

    @property
    def delta_db(self) -> float:
        if self.rssi_a_to_b is None or self.rssi_b_to_a is None:
            return math.inf
        return abs(self.rssi_a_to_b - self.rssi_b_to_a)


def asymmetric_links(
    store: MetricsStore,
    delta_threshold_db: float = 6.0,
    min_frames: int = 5,
) -> List[AsymmetricLink]:
    """Links heard in only one direction, or with a large RSSI asymmetry.

    One-way links break per-hop ACKs (data gets through, the ACK does
    not), showing up as retransmission storms; flagging them from
    telemetry lets the administrator fix the physical cause.
    """
    links = metrics.link_quality(store)
    flagged = []
    seen: Set[Tuple[int, int]] = set()
    for (tx, rx), quality in links.items():
        if quality.frames < min_frames:
            continue
        key = (min(tx, rx), max(tx, rx))
        if key in seen:
            continue
        seen.add(key)
        reverse = links.get((rx, tx))
        forward_rssi = quality.rssi_mean
        reverse_rssi = (
            reverse.rssi_mean if reverse is not None and reverse.frames >= min_frames else None
        )
        link = AsymmetricLink(
            node_a=tx, node_b=rx,
            rssi_a_to_b=forward_rssi, rssi_b_to_a=reverse_rssi,
        )
        if reverse_rssi is None or link.delta_db >= delta_threshold_db:
            flagged.append(link)
    return flagged


@dataclass(frozen=True)
class StarvingSource:
    """A traffic source delivering far below the network's typical PDR."""

    node: int
    pdr: float
    median_pdr: float
    sent: int


def starving_sources(
    store: MetricsStore,
    gap_threshold: float = 0.3,
    min_sent: int = 5,
) -> List[StarvingSource]:
    """Sources whose PDR trails the network median by ``gap_threshold``."""
    pairs = metrics.pdr_matrix(store)
    per_source: Dict[int, Tuple[int, int]] = {}
    for (src, _dst), pair in pairs.items():
        sent, delivered = per_source.get(src, (0, 0))
        per_source[src] = (sent + pair.sent, delivered + pair.delivered)
    pdrs = {
        src: delivered / sent
        for src, (sent, delivered) in per_source.items()
        if sent >= min_sent
    }
    if not pdrs:
        return []
    ordered = sorted(pdrs.values())
    median = ordered[len(ordered) // 2]
    return [
        StarvingSource(node=src, pdr=pdr, median_pdr=median, sent=per_source[src][0])
        for src, pdr in sorted(pdrs.items())
        if median - pdr >= gap_threshold
    ]
