"""Statistical anomaly detection on telemetry time series.

A rolling z-score detector over status-record series: a point is anomalous
when it deviates from the trailing window's mean by more than ``threshold``
standard deviations.  Used by the fault-diagnosis example to spot sudden
queue growth, RSSI collapse or counter stalls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Anomaly:
    """One detected outlier point."""

    index: int
    timestamp: float
    value: float
    expected: float
    z_score: float


def detect_anomalies(
    points: Sequence[Dict[str, float]],
    field: str,
    window: int = 10,
    threshold: float = 3.0,
    min_std: float = 1e-9,
) -> List[Anomaly]:
    """Rolling z-score anomaly detection.

    Args:
        points: series as produced by ``MetricsStore.status_series`` —
            dicts with a ``ts`` key and the named field.
        field: which field to analyse.
        window: trailing window length (points before the candidate).
        threshold: |z| above which a point is anomalous.
        min_std: floor on the window's standard deviation; a perfectly
            flat window uses this floor, so any change on a constant
            series is flagged.

    Raises:
        ConfigurationError: on a too-small window or bad threshold.
    """
    if window < 2:
        raise ConfigurationError(f"window must be >= 2, got {window}")
    if threshold <= 0:
        raise ConfigurationError(f"threshold must be > 0, got {threshold}")
    anomalies: List[Anomaly] = []
    values = [float(point[field]) for point in points]
    for index in range(window, len(values)):
        trailing = values[index - window:index]
        mean = sum(trailing) / window
        variance = sum((value - mean) ** 2 for value in trailing) / window
        std = max(math.sqrt(variance), min_std)
        z = (values[index] - mean) / std
        if abs(z) > threshold:
            anomalies.append(
                Anomaly(
                    index=index,
                    timestamp=float(points[index]["ts"]),
                    value=values[index],
                    expected=mean,
                    z_score=z,
                )
            )
    return anomalies
