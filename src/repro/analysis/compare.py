"""Observed-vs-ground-truth comparison.

The simulator knows exactly what happened (the trace log and the link
model); the monitoring server only knows what reached it.  These functions
quantify the gap — the dashboard-fidelity experiments F2/F3 are built on
them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.analysis.reconstruct import reconstruct_topology
from repro.monitor import metrics
from repro.monitor.storage import MetricsStore
from repro.phy.link import LinkModel
from repro.phy.params import LoRaParams
from repro.sim.topology import Topology


def true_link_set(
    topology: Topology,
    link_model: LinkModel,
    params: LoRaParams,
) -> Set[Tuple[int, int]]:
    """Directed links that are receivable under the *static* link budget
    (mean path loss + per-link shadowing, no fast fading)."""
    links: Set[Tuple[int, int]] = set()
    for tx in topology.nodes():
        for rx in topology.nodes():
            if tx == rx:
                continue
            rssi = link_model.received_power_dbm(
                params.tx_power_dbm, topology.distance(tx, rx), tx, rx, with_fading=False
            )
            if link_model.is_receivable(rssi, params):
                links.add((tx, rx))
    return links


@dataclass(frozen=True)
class TopologyAccuracy:
    """Precision/recall of the reconstructed link set."""

    true_links: int
    reconstructed_links: int
    correct: int

    @property
    def precision(self) -> float:
        return self.correct / self.reconstructed_links if self.reconstructed_links else math.nan

    @property
    def recall(self) -> float:
        return self.correct / self.true_links if self.true_links else math.nan

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if math.isnan(p) or math.isnan(r) or (p + r) == 0:
            return math.nan
        return 2 * p * r / (p + r)


def topology_accuracy(
    store: MetricsStore,
    topology: Topology,
    link_model: LinkModel,
    params: LoRaParams,
    min_frames: int = 1,
) -> TopologyAccuracy:
    """How well the server's inferred graph matches the physical one."""
    truth = true_link_set(topology, link_model, params)
    inferred = set(reconstruct_topology(store, min_frames=min_frames))
    return TopologyAccuracy(
        true_links=len(truth),
        reconstructed_links=len(inferred),
        correct=len(truth & inferred),
    )


def link_rssi_error(
    store: MetricsStore,
    topology: Topology,
    link_model: LinkModel,
    params: LoRaParams,
) -> Dict[Tuple[int, int], float]:
    """Per-link |observed mean RSSI - model RSSI| in dB.

    Only links with packet evidence are compared.
    """
    errors: Dict[Tuple[int, int], float] = {}
    for (tx, rx), quality in metrics.link_quality(store).items():
        if tx not in topology.positions or rx not in topology.positions:
            continue
        model_rssi = link_model.received_power_dbm(
            params.tx_power_dbm, topology.distance(tx, rx), tx, rx, with_fading=False
        )
        errors[(tx, rx)] = abs(quality.rssi_mean - model_rssi)
    return errors


@dataclass(frozen=True)
class PdrComparison:
    """Observed vs ground-truth delivery for the whole network."""

    true_sent: int
    true_delivered: int
    observed_sent: int
    observed_delivered: int

    @property
    def true_pdr(self) -> float:
        return self.true_delivered / self.true_sent if self.true_sent else math.nan

    @property
    def observed_pdr(self) -> float:
        return self.observed_delivered / self.observed_sent if self.observed_sent else math.nan

    @property
    def absolute_error(self) -> float:
        if math.isnan(self.true_pdr) or math.isnan(self.observed_pdr):
            return math.nan
        return abs(self.true_pdr - self.observed_pdr)


def pdr_estimation_error(
    store: MetricsStore,
    true_sent: int,
    true_delivered: int,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> PdrComparison:
    """Compare the dashboard's PDR against simulator ground truth.

    ``true_sent``/``true_delivered`` come from the trace log (fragment or
    message level — callers must be consistent with the observed metric,
    which is fragment/packet level).
    """
    pairs = metrics.pdr_matrix(store, since=since, until=until)
    observed_sent = sum(pair.sent for pair in pairs.values())
    observed_delivered = sum(pair.delivered for pair in pairs.values())
    return PdrComparison(
        true_sent=true_sent,
        true_delivered=true_delivered,
        observed_sent=observed_sent,
        observed_delivered=observed_delivered,
    )
