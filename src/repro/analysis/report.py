"""Experiment report formatting.

Every bench prints its table through :class:`ExperimentReport` so the
output format is uniform and EXPERIMENTS.md fragments can be regenerated
mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class ExperimentReport:
    """A titled table with an expectation note.

    Attributes:
        experiment_id: e.g. "T2" or "F4".
        title: one-line description.
        expectation: the qualitative shape the paper's design implies
            (there are no published absolute numbers for this paper —
            see DESIGN.md's source-text caveat).
        headers: column names.
        rows: stringifiable cell values.
    """

    experiment_id: str
    title: str
    expectation: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Fixed-width text rendering."""
        cells = [[str(cell) for cell in row] for row in self.rows]
        widths = [len(header) for header in self.headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"expected shape: {self.expectation}",
            "",
            " | ".join(header.ljust(widths[index]) for index, header in enumerate(self.headers)),
            "-+-".join("-" * widths[index] for index in range(len(self.headers))),
        ]
        for row in cells:
            lines.append(" | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Markdown rendering for EXPERIMENTS.md."""
        lines = [
            f"### {self.experiment_id}: {self.title}",
            "",
            f"*Expected shape:* {self.expectation}",
            "",
            "| " + " | ".join(str(header) for header in self.headers) + " |",
            "|" + "|".join("---" for _ in self.headers) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
        for note in self.notes:
            lines.append(f"\n*Note:* {note}")
        return "\n".join(lines)
