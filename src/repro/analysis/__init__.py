"""Offline analysis: topology reconstruction, ground-truth comparison,
anomaly detection and report generation."""

from repro.analysis.anomaly import detect_anomalies
from repro.analysis.compare import (
    link_rssi_error,
    pdr_estimation_error,
    topology_accuracy,
)
from repro.analysis.pathology import (
    asymmetric_links,
    congested_relays,
    hidden_terminal_pairs,
    starving_sources,
)
from repro.analysis.planning import best_gateway_candidates, sf_recommendations
from repro.analysis.reconstruct import ReconstructedLink, reconstruct_topology
from repro.analysis.report import ExperimentReport

__all__ = [
    "detect_anomalies",
    "link_rssi_error",
    "pdr_estimation_error",
    "topology_accuracy",
    "asymmetric_links",
    "congested_relays",
    "hidden_terminal_pairs",
    "starving_sources",
    "best_gateway_candidates",
    "sf_recommendations",
    "ReconstructedLink",
    "reconstruct_topology",
    "ExperimentReport",
]
