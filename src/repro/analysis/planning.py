"""Radio-planning advice derived from telemetry (ADR-style).

LoRaWAN networks run Adaptive Data Rate: the server looks at each node's
SNR headroom and tells it to drop to a faster spreading factor (or raise
power).  The same reasoning applies to a monitored mesh — this module
turns the server's per-link SNR statistics into per-node SF and power
recommendations an administrator can apply.

The criterion mirrors semtech's ADR: for the *weakest link the node needs*
(its worst usable neighbor), compute the margin above the demodulation
floor at the current SF; every ~2.5 dB of margin allows one SF step down
(each step halves airtime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.monitor import metrics
from repro.monitor.storage import MetricsStore
from repro.phy.link import SNR_FLOOR_DB

#: Required SNR margin kept in reserve (fading headroom), dB.
ADR_MARGIN_DB = 10.0

#: SNR gained per SF step down (approximate, from the floor table).
SNR_PER_SF_STEP_DB = 2.5


@dataclass(frozen=True)
class SfRecommendation:
    """Spreading-factor advice for one node."""

    node: int
    current_sf: int
    recommended_sf: int
    weakest_needed_snr_db: float
    margin_db: float

    @property
    def airtime_factor(self) -> float:
        """Approximate airtime multiplier if the advice is applied
        (each SF step roughly doubles/halves time-on-air)."""
        return 2.0 ** (self.recommended_sf - self.current_sf)


def recommend_sf(
    weakest_snr_db: float,
    current_sf: int,
    margin_db: float = ADR_MARGIN_DB,
) -> int:
    """SF that keeps ``margin_db`` of headroom on the weakest needed link.

    Returns a value in 7..12; never recommends a *slower* SF than needed
    to close the link (if even SF12 cannot, returns 12).
    """
    for sf in range(7, 13):
        if weakest_snr_db >= SNR_FLOOR_DB[sf] + margin_db:
            return sf
    return 12


def sf_recommendations(
    store: MetricsStore,
    current_sf: int,
    min_frames: int = 10,
    margin_db: float = ADR_MARGIN_DB,
) -> List[SfRecommendation]:
    """Per-node SF advice from observed inbound link SNRs.

    For each node, the constraint is the weakest link *into* it among
    links with enough evidence — if neighbors can still be demodulated
    after stepping down, the node's own transmissions (symmetric links)
    will also survive.
    """
    links = metrics.link_quality(store)
    weakest_in: Dict[int, float] = {}
    for (tx, rx), quality in links.items():
        if quality.frames < min_frames:
            continue
        snr = quality.snr_mean
        if rx not in weakest_in or snr < weakest_in[rx]:
            weakest_in[rx] = snr
    recommendations = []
    for node in sorted(weakest_in):
        weakest = weakest_in[node]
        recommended = recommend_sf(weakest, current_sf, margin_db=margin_db)
        recommendations.append(
            SfRecommendation(
                node=node,
                current_sf=current_sf,
                recommended_sf=recommended,
                weakest_needed_snr_db=weakest,
                margin_db=weakest - SNR_FLOOR_DB[current_sf],
            )
        )
    return recommendations


@dataclass(frozen=True)
class GatewayPlacement:
    """Score for hosting the gateway at a given node."""

    node: int
    mean_hops_to_all: float


def best_gateway_candidates(
    store: MetricsStore,
    top: int = 3,
) -> List[GatewayPlacement]:
    """Rank nodes by mean shortest-path hop count to everyone else on the
    reconstructed topology — where the gateway *should* live.

    Uses breadth-first search over the telemetry-derived link graph.
    Unreachable pairs contribute a large penalty (the node count).
    """
    adjacency: Dict[int, List[int]] = {}
    for edge in metrics.neighbor_graph(store):
        adjacency.setdefault(edge.rx, []).append(edge.tx)
        adjacency.setdefault(edge.tx, []).append(edge.rx)
    for (tx, rx) in metrics.link_quality(store):
        adjacency.setdefault(rx, []).append(tx)
        adjacency.setdefault(tx, []).append(rx)
    nodes = sorted(adjacency)
    if not nodes:
        return []
    penalty = float(len(nodes))

    def mean_hops(source: int) -> float:
        distances = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier = []
            for current in frontier:
                for neighbor in adjacency.get(current, ()):
                    if neighbor not in distances:
                        distances[neighbor] = distances[current] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        total = 0.0
        for node in nodes:
            if node == source:
                continue
            total += distances.get(node, penalty)
        return total / (len(nodes) - 1) if len(nodes) > 1 else 0.0

    ranked = sorted(
        (GatewayPlacement(node=node, mean_hops_to_all=mean_hops(node)) for node in nodes),
        key=lambda placement: (placement.mean_hops_to_all, placement.node),
    )
    return ranked[:top]
