"""Topology reconstruction from telemetry.

The server never sees the deployment map; it infers the radio graph from
two independent evidence streams:

* the neighbor tables nodes ship inside status records, and
* the per-frame IN records (observer heard prev_hop).

A link confirmed by both streams is high-confidence; either stream alone
still yields a link with its source recorded, so experiment F3 can study
how quickly each stream converges to the true graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.monitor import metrics
from repro.monitor.storage import MetricsStore


@dataclass(frozen=True)
class ReconstructedLink:
    """One inferred directed radio link."""

    tx: int
    rx: int
    rssi_dbm: float
    evidence: str  # "status", "packets" or "both"
    frames: int


def reconstruct_topology(
    store: MetricsStore,
    since: Optional[float] = None,
    min_frames: int = 1,
) -> Dict[Tuple[int, int], ReconstructedLink]:
    """Infer the directed link set from all telemetry in the store.

    Args:
        store: server-side record store.
        since: ignore packet evidence older than this (status evidence uses
            the latest snapshot regardless).
        min_frames: packet-evidence links heard fewer times are discarded
            (filters one-off lucky receptions at the sensitivity edge).
    """
    links: Dict[Tuple[int, int], ReconstructedLink] = {}

    for edge in metrics.neighbor_graph(store):
        links[(edge.tx, edge.rx)] = ReconstructedLink(
            tx=edge.tx,
            rx=edge.rx,
            rssi_dbm=edge.rssi_dbm,
            evidence="status",
            frames=edge.frames_heard,
        )

    for (tx, rx), quality in metrics.link_quality(store, since=since).items():
        if quality.frames < min_frames:
            continue
        existing = links.get((tx, rx))
        if existing is None:
            links[(tx, rx)] = ReconstructedLink(
                tx=tx,
                rx=rx,
                rssi_dbm=quality.rssi_mean,
                evidence="packets",
                frames=quality.frames,
            )
        else:
            links[(tx, rx)] = ReconstructedLink(
                tx=tx,
                rx=rx,
                rssi_dbm=quality.rssi_mean,
                evidence="both",
                frames=max(existing.frames, quality.frames),
            )
    return links


def reconstructed_adjacency(
    store: MetricsStore,
    since: Optional[float] = None,
    min_frames: int = 1,
) -> Dict[int, List[int]]:
    """Adjacency list view of :func:`reconstruct_topology` (rx hears tx)."""
    adjacency: Dict[int, List[int]] = {}
    for (tx, rx) in reconstruct_topology(store, since=since, min_frames=min_frames):
        adjacency.setdefault(rx, []).append(tx)
    for neighbors in adjacency.values():
        neighbors.sort()
    return adjacency
