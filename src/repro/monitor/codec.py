"""Telemetry batch codecs: pluggable encodings for :class:`RecordBatch`.

The ingest tier separates *what* travels (a record batch) from *how it
is encoded* (a codec) and *how it arrives* (a transport, see
:mod:`repro.monitor.transport`).  Two codecs ship:

* :class:`JsonCodec` — the paper's out-of-band wire format, byte-for-byte
  identical to ``RecordBatch.to_json_bytes()`` /
  ``RecordBatch.from_json_bytes()``.  Self-describing and debuggable;
  also the slowest thing on the ingest hot path (BENCH_fleet.json).
* :class:`BinaryCodec` — the compact telemetry datagram format: one
  fixed big-endian header (magic / version / network id / node /
  batch_seq, network order like the mesh frame) followed by the packed
  per-record encodings already used by the in-band uplink.  Unlike the
  in-band format (which cannot afford to spend LoRa airtime on a
  network id and relies on the gateway bridge to attribute batches),
  the datagram format carries its ``network_id`` inline, so a single
  UDP socket can ingest a whole fleet.

Codecs are negotiated on ``POST /api/v1/networks/<id>/ingest`` via the
``Content-Type`` request header (:func:`codec_for_content_type`) and
selected by name on the UDP transport and the CLI
(:func:`resolve_codec`).  Absent or JSON content types keep the legacy
HTTP+JSON path byte-identical.

This module is also the **normative source of the telemetry wire
format**: the "Telemetry record wire format" section of ``PROTOCOL.md``
is generated from the ``struct`` layouts here by
:func:`render_protocol_telemetry_markdown`, and a staleness test
(mirroring the ``docs/API.md`` pin) fails whenever the document drifts
from the code.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import DecodeError, EncodeError
from repro.monitor.ingest import DEFAULT_NETWORK_ID, is_valid_network_id
from repro.monitor.records import (
    SCHEMA_VERSION,
    NeighborObservation,
    PacketRecord,
    RecordBatch,
    StatusRecord,
)

#: ``Content-Type`` of the JSON batch encoding (the paper's POST body).
JSON_CONTENT_TYPE = "application/json"

#: ``Content-Type`` of the binary telemetry datagram encoding.
BINARY_CONTENT_TYPE = "application/vnd.repro.telemetry+binary"

#: Magic of the telemetry datagram header: ``"LT"`` (LoRa Telemetry).
#: Distinct from the in-band batch magic ``0x4C4D`` (``"LM"``) so a
#: datagram accidentally fed to the in-band decoder (or vice versa) is
#: rejected instead of misparsed.
TELEMETRY_MAGIC = 0x4C54

#: Fixed telemetry datagram header (big-endian, like the mesh frame):
#: magic, version, net_len, node, batch_seq, sent_at (centiseconds),
#: dropped, n_packets, n_status.  ``net_len`` bytes of ASCII network id
#: follow the header (0 = the implicit ``default`` network), then the
#: packed records.
DATAGRAM_HEADER_FORMAT = "!HBBHHIHHB"
DATAGRAM_HEADER_SIZE = struct.calcsize(DATAGRAM_HEADER_FORMAT)

#: Longest network id the datagram format can carry (matches the
#: ``ingest`` module's network-id token).
MAX_NETWORK_ID_BYTES = 64


class Codec(ABC):
    """One way to turn a :class:`RecordBatch` into wire bytes and back."""

    #: Registry key (``--codec`` on the CLI, ``codec=`` in the API).
    name: str = ""
    #: HTTP ``Content-Type`` this codec is negotiated under.
    content_type: str = ""

    @abstractmethod
    def encode(self, batch: RecordBatch) -> bytes:
        """Wire bytes for ``batch``."""

    @abstractmethod
    def decode(self, raw: bytes) -> RecordBatch:
        """Parse wire bytes; raises :class:`DecodeError` on malformed input."""


class JsonCodec(Codec):
    """The out-of-band JSON encoding — byte-identical to the legacy path."""

    name = "json"
    content_type = JSON_CONTENT_TYPE

    def encode(self, batch: RecordBatch) -> bytes:
        return batch.to_json_bytes()

    def decode(self, raw: bytes) -> RecordBatch:
        return RecordBatch.from_json_bytes(raw)


class BinaryCodec(Codec):
    """The compact telemetry datagram encoding (fixed header + packed records).

    Loss-tolerant and stateless in the TinyTelemetry spirit: every
    datagram is self-contained — header, network id, records — so the
    server needs no per-connection state and a lost datagram loses only
    its own records (the per-(network, node) sequence-gap accounting in
    :mod:`repro.monitor.transport` quantifies exactly how many).
    """

    name = "binary"
    content_type = BINARY_CONTENT_TYPE

    def encode(self, batch: RecordBatch) -> bytes:
        if len(batch.packet_records) > 0xFFFF or len(batch.status_records) > 0xFF:
            raise EncodeError("too many records for a telemetry datagram")
        network = b"" if batch.network_id == DEFAULT_NETWORK_ID else batch.network_id.encode("ascii")
        if len(network) > MAX_NETWORK_ID_BYTES:
            raise EncodeError(f"network id {batch.network_id!r} too long for the datagram format")
        header = struct.pack(
            DATAGRAM_HEADER_FORMAT,
            TELEMETRY_MAGIC,
            batch.schema_version,
            len(network),
            batch.node,
            batch.batch_seq & 0xFFFF,
            max(0, min(0xFFFFFFFF, int(round(batch.sent_at * 100)))),
            max(0, min(0xFFFF, batch.dropped_records)),
            len(batch.packet_records),
            len(batch.status_records),
        )
        parts = [header, network]
        parts.extend(record.to_binary() for record in batch.packet_records)
        parts.extend(record.to_binary() for record in batch.status_records)
        return b"".join(parts)

    def decode(self, raw: bytes) -> RecordBatch:
        if len(raw) < DATAGRAM_HEADER_SIZE:
            raise DecodeError(f"telemetry datagram of {len(raw)} bytes is truncated")
        magic, version, net_len, node, batch_seq, sent_cs, dropped, n_packets, n_status = (
            struct.unpack(DATAGRAM_HEADER_FORMAT, raw[:DATAGRAM_HEADER_SIZE])
        )
        if magic != TELEMETRY_MAGIC:
            raise DecodeError(f"bad telemetry magic 0x{magic:04X}")
        if version != SCHEMA_VERSION:
            raise DecodeError(f"unsupported schema version {version}")
        offset = DATAGRAM_HEADER_SIZE
        if len(raw) < offset + net_len:
            raise DecodeError("telemetry datagram network id truncated")
        if net_len == 0:
            network_id = DEFAULT_NETWORK_ID
        else:
            try:
                network_id = raw[offset:offset + net_len].decode("ascii")
            except UnicodeDecodeError as exc:
                raise DecodeError("telemetry datagram network id is not ASCII") from exc
            if not is_valid_network_id(network_id):
                raise DecodeError(f"bad network id {network_id!r}")
        offset += net_len
        if len(raw) < offset + n_packets * PacketRecord.BINARY_SIZE:
            raise DecodeError("telemetry datagram packet records truncated")
        packets: List[PacketRecord] = []
        for _ in range(n_packets):
            packets.append(PacketRecord.from_binary_at(raw, offset, node))
            offset += PacketRecord.BINARY_SIZE
        status: List[StatusRecord] = []
        for _ in range(n_status):
            record, consumed = StatusRecord.from_binary(raw[offset:], node=node)
            status.append(record)
            offset += consumed
        if offset != len(raw):
            raise DecodeError(f"{len(raw) - offset} trailing bytes after telemetry datagram")
        return RecordBatch(
            node=node,
            batch_seq=batch_seq,
            sent_at=sent_cs / 100.0,
            packet_records=tuple(packets),
            status_records=tuple(status),
            dropped_records=dropped,
            network_id=network_id,
        )


#: The codec registry, keyed by :attr:`Codec.name`.
CODECS: Dict[str, Codec] = {codec.name: codec for codec in (JsonCodec(), BinaryCodec())}

#: ``Content-Type`` -> codec, for HTTP negotiation.
_BY_CONTENT_TYPE: Dict[str, Codec] = {codec.content_type: codec for codec in CODECS.values()}


def resolve_codec(codec: Union[str, Codec]) -> Codec:
    """The codec instance for a registry name (identity for instances)."""
    if isinstance(codec, Codec):
        return codec
    try:
        return CODECS[codec]
    except KeyError:
        raise ValueError(
            f"unknown codec {codec!r}: expected one of {sorted(CODECS)}"
        ) from None


def codec_for_content_type(content_type: Optional[str]) -> Codec:
    """The codec negotiated by an HTTP ``Content-Type`` header.

    Parameters are stripped (``application/json; charset=utf-8``
    negotiates JSON); an absent or unrecognised content type falls back
    to JSON, which keeps every pre-codec client on the byte-identical
    legacy path.
    """
    if not content_type:
        return CODECS["json"]
    base = content_type.split(";", 1)[0].strip().lower()
    return _BY_CONTENT_TYPE.get(base, CODECS["json"])


# -- PROTOCOL.md generation ----------------------------------------------------
#
# The telemetry wire format documented in PROTOCOL.md is rendered from
# the very struct layouts the codecs pack with, so the document cannot
# drift from the code: change a format string and the staleness test
# demands the section be regenerated.

#: struct format char -> human-readable type name.
_TYPE_NAMES = {
    "B": "uint8",
    "H": "uint16",
    "I": "uint32",
    "h": "int16",
    "i": "int32",
}


@dataclass(frozen=True)
class FieldSpec:
    """One field of a packed struct layout."""

    name: str
    note: str = ""


@dataclass(frozen=True)
class StructLayout:
    """One packed binary layout: a struct format plus field semantics."""

    title: str
    struct_format: str
    fields: Tuple[FieldSpec, ...]
    trailer: str = ""

    def __post_init__(self) -> None:
        chars = self.struct_format.lstrip("!")
        if len(chars) != len(self.fields):
            raise ValueError(
                f"layout {self.title!r}: {len(chars)} format fields but "
                f"{len(self.fields)} field specs"
            )

    def rows(self) -> List[Tuple[int, int, str, FieldSpec]]:
        """(offset, size, type-name, field) per packed field."""
        rows: List[Tuple[int, int, str, FieldSpec]] = []
        offset = 0
        for char, field in zip(self.struct_format.lstrip("!"), self.fields):
            size = struct.calcsize("!" + char)
            rows.append((offset, size, _TYPE_NAMES[char], field))
            offset += size
        return rows

    @property
    def size(self) -> int:
        return struct.calcsize(self.struct_format)


def telemetry_layouts() -> Tuple[StructLayout, ...]:
    """Every packed telemetry layout, straight from the codec structs."""
    return (
        StructLayout(
            title="Telemetry datagram header (binary codec, UDP / negotiated HTTP)",
            struct_format=DATAGRAM_HEADER_FORMAT,
            fields=(
                FieldSpec("magic", f"`0x{TELEMETRY_MAGIC:04X}` (\"LT\")"),
                FieldSpec("version", f"schema version, currently {SCHEMA_VERSION}"),
                FieldSpec("net_len", "network-id length N; 0 = `default` network"),
                FieldSpec("node", "reporting node address"),
                FieldSpec("batch_seq", "client batch sequence (gap accounting key)"),
                FieldSpec("sent_at", "client send time, centiseconds"),
                FieldSpec("dropped", "client-side buffer-overflow count"),
                FieldSpec("n_packets", "packet-record count"),
                FieldSpec("n_status", "status-record count"),
            ),
            trailer=(
                "followed by N bytes of ASCII network id, then `n_packets` "
                "packet records and `n_status` status records, no padding. "
                "Each datagram is self-contained (stateless, loss-tolerant); "
                "the UDP transport counts per-(network, node) `batch_seq` "
                "gaps, duplicates and reorders."
            ),
        ),
        StructLayout(
            title="In-band batch header (mesh TELEMETRY frames)",
            struct_format=RecordBatch._BINARY_HEADER,
            fields=(
                FieldSpec("magic", '`0x4C4D` ("LM")'),
                FieldSpec("version", f"schema version, currently {SCHEMA_VERSION}"),
                FieldSpec("node", "reporting node address"),
                FieldSpec("batch_seq", "client batch sequence"),
                FieldSpec("sent_at", "client send time, centiseconds"),
                FieldSpec("dropped", "client-side buffer-overflow count"),
                FieldSpec("n_packets", "packet-record count"),
                FieldSpec("n_status", "status-record count"),
            ),
            trailer=(
                "followed by the packed records, no padding.  Spends no "
                "bytes on a network id — the gateway bridge attributes "
                "batches to its own network server-side."
            ),
        ),
        StructLayout(
            title="Packet record",
            struct_format=PacketRecord._BINARY_FORMAT,
            fields=(
                FieldSpec("flags", "bit 0: direction, 1 = OUT"),
                FieldSpec("seq", "record sequence (dedup key with node)"),
                FieldSpec("timestamp", "observation time, centiseconds"),
                FieldSpec("src", "end-to-end source address"),
                FieldSpec("dst", "end-to-end destination address"),
                FieldSpec("next_hop", "link-layer recipient"),
                FieldSpec("prev_hop", "link-layer sender"),
                FieldSpec("ptype", "packet type"),
                FieldSpec("packet_id", "origin-assigned packet id"),
                FieldSpec("size_bytes", "frame size on the air"),
                FieldSpec("rssi", "dBm x 10 (IN records)"),
                FieldSpec("snr", "dB x 10 (IN records)"),
                FieldSpec("airtime", "milliseconds (OUT records)"),
                FieldSpec("attempt", "transmission attempt, 1 = first try"),
            ),
        ),
        StructLayout(
            title="Status record header",
            struct_format=StatusRecord._BINARY_FORMAT,
            fields=(
                FieldSpec("seq", "record sequence (dedup key with node)"),
                FieldSpec("timestamp", "snapshot time, centiseconds"),
                FieldSpec("uptime_s", "seconds since boot"),
                FieldSpec("queue_depth", ""),
                FieldSpec("route_count", ""),
                FieldSpec("neighbor_count", ""),
                FieldSpec("battery", "centivolts"),
                FieldSpec("tx_frames", ""),
                FieldSpec("tx_airtime", "milliseconds"),
                FieldSpec("retransmissions", ""),
                FieldSpec("drops", ""),
                FieldSpec("duty", "permille of the duty-cycle budget"),
                FieldSpec("originated", ""),
                FieldSpec("delivered", ""),
                FieldSpec("forwarded", ""),
                FieldSpec("n_neighbors", "neighbor-entry count"),
            ),
            trailer="followed by `n_neighbors` neighbor entries.",
        ),
        StructLayout(
            title="Neighbor entry",
            struct_format=NeighborObservation._BINARY_FORMAT,
            fields=(
                FieldSpec("address", "neighbor address"),
                FieldSpec("rssi", "EWMA, dBm x 10"),
                FieldSpec("snr", "EWMA, dB x 10"),
                FieldSpec("frames_heard", ""),
            ),
        ),
    )


#: Markers delimiting the generated block inside PROTOCOL.md.
PROTOCOL_BEGIN_MARK = "<!-- BEGIN GENERATED: telemetry-wire-format -->"
PROTOCOL_END_MARK = "<!-- END GENERATED: telemetry-wire-format -->"


def render_protocol_telemetry_markdown() -> str:
    """The generated "Telemetry record wire format" block of PROTOCOL.md.

    Includes the begin/end markers; everything between them is owned by
    this function.  Regenerate the file with::

        python -c "from repro.monitor.codec import pin_protocol_markdown; \\
                   pin_protocol_markdown('PROTOCOL.md')"
    """
    lines: List[str] = [
        PROTOCOL_BEGIN_MARK,
        "<!-- Generated from the struct layouts in repro.monitor.codec /",
        "     repro.monitor.records; edit those modules, not this block.",
        "     tests/unit/test_codec.py keeps the two in sync. -->",
        "",
        "All telemetry integers are big-endian (network order, `!` in",
        "`struct` notation), like the mesh frame.  Two codecs encode a",
        "record batch; HTTP ingest negotiates them via `Content-Type`,",
        "the UDP transport and the CLI select them by name:",
        "",
        "| codec | `Content-Type` | format |",
        "|---|---|---|",
        f"| `json` | `{JSON_CONTENT_TYPE}` | the out-of-band JSON document (see above) |",
        f"| `binary` | `{BINARY_CONTENT_TYPE}` | telemetry datagram: fixed header + packed records |",
        "",
        "An absent or unrecognised `Content-Type` falls back to `json`,",
        "which keeps pre-codec HTTP clients byte-identical.",
        "",
    ]
    for layout in telemetry_layouts():
        lines.append(f"#### {layout.title} — {layout.size} bytes, `{layout.struct_format}`")
        lines.append("")
        lines.append("| offset | size | type | field | notes |")
        lines.append("|-------:|-----:|------|-------|-------|")
        for offset, size, type_name, field in layout.rows():
            lines.append(
                f"| {offset} | {size} | {type_name} | `{field.name}` | {field.note} |"
            )
        lines.append("")
        if layout.trailer:
            lines.append(f"… {layout.trailer}")
            lines.append("")
    lines.append(PROTOCOL_END_MARK)
    return "\n".join(lines)


def replace_generated_section(document: str, rendered: Optional[str] = None) -> str:
    """``document`` with its generated block replaced by ``rendered``.

    Raises :class:`ValueError` when the markers are missing or
    malformed, so a truncated PROTOCOL.md fails loudly.
    """
    if rendered is None:
        rendered = render_protocol_telemetry_markdown()
    begin = document.find(PROTOCOL_BEGIN_MARK)
    end = document.find(PROTOCOL_END_MARK)
    if begin < 0 or end < begin:
        raise ValueError("PROTOCOL.md generated-section markers missing or out of order")
    return document[:begin] + rendered + document[end + len(PROTOCOL_END_MARK):]


def extract_generated_section(document: str) -> str:
    """The generated block currently in ``document`` (markers included)."""
    begin = document.find(PROTOCOL_BEGIN_MARK)
    end = document.find(PROTOCOL_END_MARK)
    if begin < 0 or end < begin:
        raise ValueError("PROTOCOL.md generated-section markers missing or out of order")
    return document[begin:end + len(PROTOCOL_END_MARK)]


def pin_protocol_markdown(path: str) -> None:
    """Regenerate the telemetry section of the PROTOCOL.md at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        document = handle.read()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(replace_generated_section(document))
