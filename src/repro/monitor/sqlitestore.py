"""SQLite-backed metrics store.

A drop-in alternative to the in-memory :class:`~repro.monitor.storage.MetricsStore`
for monitoring servers that must survive restarts or hold more telemetry
than fits in RAM.  Implements the same query interface, so the metric
aggregations, the dashboard and the HTTP API work unchanged on top of it.

Uses only the standard library ``sqlite3`` module.  Pass ``":memory:"``
(the default) for an ephemeral database or a file path for persistence.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.monitor.records import (
    Direction,
    NeighborObservation,
    PacketRecord,
    StatusRecord,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS packet_records (
    node INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    ts REAL NOT NULL,
    direction TEXT NOT NULL,
    src INTEGER NOT NULL,
    dst INTEGER NOT NULL,
    next_hop INTEGER NOT NULL,
    prev_hop INTEGER NOT NULL,
    ptype INTEGER NOT NULL,
    packet_id INTEGER NOT NULL,
    size_bytes INTEGER NOT NULL,
    rssi REAL,
    snr REAL,
    airtime REAL,
    attempt INTEGER NOT NULL,
    PRIMARY KEY (node, seq)
);
CREATE INDEX IF NOT EXISTS idx_packet_ts ON packet_records (ts);
CREATE INDEX IF NOT EXISTS idx_packet_src ON packet_records (src);

CREATE TABLE IF NOT EXISTS status_records (
    node INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    ts REAL NOT NULL,
    uptime_s REAL NOT NULL,
    queue_depth INTEGER NOT NULL,
    route_count INTEGER NOT NULL,
    neighbor_count INTEGER NOT NULL,
    battery_v REAL NOT NULL,
    tx_frames INTEGER NOT NULL,
    tx_airtime_s REAL NOT NULL,
    retransmissions INTEGER NOT NULL,
    drops INTEGER NOT NULL,
    duty REAL NOT NULL,
    originated INTEGER NOT NULL,
    delivered INTEGER NOT NULL,
    forwarded INTEGER NOT NULL,
    neighbors_json TEXT NOT NULL,
    PRIMARY KEY (node, seq)
);
CREATE INDEX IF NOT EXISTS idx_status_ts ON status_records (node, ts);

CREATE TABLE IF NOT EXISTS batches (
    node INTEGER PRIMARY KEY,
    last_seen REAL NOT NULL,
    dropped INTEGER NOT NULL
);
"""


class SqliteMetricsStore:
    """Metrics store persisted in SQLite.

    API-compatible with :class:`~repro.monitor.storage.MetricsStore`.
    Unlike the in-memory store there is no retention bound; ``evictions``
    is always 0.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    # -- writes ---------------------------------------------------------------

    def add_packet_record(self, record: PacketRecord) -> None:
        try:
            self._conn.execute(
                "INSERT OR REPLACE INTO packet_records VALUES "
                "(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                (
                    record.node, record.seq, record.timestamp, record.direction.value,
                    record.src, record.dst, record.next_hop, record.prev_hop,
                    record.ptype, record.packet_id, record.size_bytes,
                    record.rssi_dbm, record.snr_db, record.airtime_s, record.attempt,
                ),
            )
        except sqlite3.Error as exc:
            raise StorageError(f"sqlite insert failed: {exc}") from exc

    def add_status_record(self, record: StatusRecord) -> None:
        neighbors_json = json.dumps([n.to_json_dict() for n in record.neighbors])
        try:
            self._conn.execute(
                "INSERT OR REPLACE INTO status_records VALUES "
                "(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                (
                    record.node, record.seq, record.timestamp, record.uptime_s,
                    record.queue_depth, record.route_count, record.neighbor_count,
                    record.battery_v, record.tx_frames, record.tx_airtime_s,
                    record.retransmissions, record.drops, record.duty_utilisation,
                    record.originated, record.delivered, record.forwarded,
                    neighbors_json,
                ),
            )
        except sqlite3.Error as exc:
            raise StorageError(f"sqlite insert failed: {exc}") from exc

    def note_batch(self, node: int, received_at: float, dropped_records: int) -> None:
        self._conn.execute(
            "INSERT INTO batches (node, last_seen, dropped) VALUES (?,?,?) "
            "ON CONFLICT(node) DO UPDATE SET last_seen=excluded.last_seen, "
            "dropped=batches.dropped+excluded.dropped",
            (node, received_at, dropped_records),
        )

    def commit(self) -> None:
        """Flush pending writes (call after each ingested batch)."""
        self._conn.commit()

    # -- reads ----------------------------------------------------------------

    def _packet_from_row(self, row: Tuple) -> PacketRecord:
        (node, seq, ts, direction, src, dst, next_hop, prev_hop,
         ptype, packet_id, size_bytes, rssi, snr, airtime, attempt) = row
        return PacketRecord(
            node=node, seq=seq, timestamp=ts, direction=Direction(direction),
            src=src, dst=dst, next_hop=next_hop, prev_hop=prev_hop,
            ptype=ptype, packet_id=packet_id, size_bytes=size_bytes,
            rssi_dbm=rssi, snr_db=snr, airtime_s=airtime, attempt=attempt,
        )

    def _status_from_row(self, row: Tuple) -> StatusRecord:
        (node, seq, ts, uptime_s, queue_depth, route_count, neighbor_count,
         battery_v, tx_frames, tx_airtime_s, retransmissions, drops, duty,
         originated, delivered, forwarded, neighbors_json) = row
        neighbors = tuple(
            NeighborObservation.from_json_dict(item)
            for item in json.loads(neighbors_json)
        )
        return StatusRecord(
            node=node, seq=seq, timestamp=ts, uptime_s=uptime_s,
            queue_depth=queue_depth, route_count=route_count,
            neighbor_count=neighbor_count, battery_v=battery_v,
            tx_frames=tx_frames, tx_airtime_s=tx_airtime_s,
            retransmissions=retransmissions, drops=drops, duty_utilisation=duty,
            originated=originated, delivered=delivered, forwarded=forwarded,
            neighbors=neighbors,
        )

    def nodes(self) -> List[int]:
        rows = self._conn.execute(
            "SELECT node FROM packet_records UNION SELECT node FROM status_records "
            "UNION SELECT node FROM batches ORDER BY 1"
        ).fetchall()
        return [row[0] for row in rows]

    def packet_records(
        self,
        node: Optional[int] = None,
        direction: Optional[Direction] = None,
        ptype: Optional[int] = None,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Iterator[PacketRecord]:
        clauses = []
        params: List = []
        for column, value in (
            ("node", node), ("ptype", ptype), ("src", src), ("dst", dst),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if direction is not None:
            clauses.append("direction = ?")
            params.append(direction.value)
        if since is not None:
            clauses.append("ts >= ?")
            params.append(since)
        if until is not None:
            clauses.append("ts <= ?")
            params.append(until)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        cursor = self._conn.execute(
            f"SELECT * FROM packet_records{where} ORDER BY node, seq", params
        )
        for row in cursor:
            yield self._packet_from_row(row)

    def status_records(
        self,
        node: int,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Iterator[StatusRecord]:
        clauses = ["node = ?"]
        params: List = [node]
        if since is not None:
            clauses.append("ts >= ?")
            params.append(since)
        if until is not None:
            clauses.append("ts <= ?")
            params.append(until)
        cursor = self._conn.execute(
            f"SELECT * FROM status_records WHERE {' AND '.join(clauses)} ORDER BY seq",
            params,
        )
        for row in cursor:
            yield self._status_from_row(row)

    def latest_status(self, node: int) -> Optional[StatusRecord]:
        row = self._conn.execute(
            "SELECT * FROM status_records WHERE node = ? ORDER BY seq DESC LIMIT 1",
            (node,),
        ).fetchone()
        return self._status_from_row(row) if row else None

    def status_series(
        self,
        node: int,
        fields: List[str],
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[Dict[str, float]]:
        series = []
        for record in self.status_records(node, since=since, until=until):
            point: Dict[str, float] = {"ts": record.timestamp}
            for name in fields:
                if not hasattr(record, name):
                    raise StorageError(f"unknown status field {name!r}")
                point[name] = float(getattr(record, name))
            series.append(point)
        return series

    def last_seen(self, node: int) -> Optional[float]:
        row = self._conn.execute(
            "SELECT last_seen FROM batches WHERE node = ?", (node,)
        ).fetchone()
        return row[0] if row else None

    def reported_drops(self, node: int) -> int:
        row = self._conn.execute(
            "SELECT dropped FROM batches WHERE node = ?", (node,)
        ).fetchone()
        return row[0] if row else 0

    def packet_record_count(self, node: Optional[int] = None) -> int:
        if node is not None:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM packet_records WHERE node = ?", (node,)
            ).fetchone()
        else:
            row = self._conn.execute("SELECT COUNT(*) FROM packet_records").fetchone()
        return row[0]

    def status_record_count(self, node: Optional[int] = None) -> int:
        if node is not None:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM status_records WHERE node = ?", (node,)
            ).fetchone()
        else:
            row = self._conn.execute("SELECT COUNT(*) FROM status_records").fetchone()
        return row[0]

    @property
    def evictions(self) -> int:
        return 0

    def time_bounds(self) -> Optional[tuple]:
        row = self._conn.execute(
            "SELECT MIN(ts), MAX(ts) FROM packet_records"
        ).fetchone()
        if row is None or row[0] is None:
            return None
        return (row[0], row[1])
