"""SQLite-backed metrics store.

A drop-in alternative to the in-memory :class:`~repro.monitor.storage.MetricsStore`
for monitoring servers that must survive restarts or hold more telemetry
than fits in RAM.  Implements the same query interface, so the metric
aggregations, the dashboard and the HTTP API work unchanged on top of it.

Uses only the standard library ``sqlite3`` module.  Pass ``":memory:"``
(the default) for an ephemeral database or a file path for persistence.

Write path
----------

Writes are buffered and flushed with ``executemany`` in one transaction,
which is the difference between a few thousand and a few hundred thousand
records per second on a file-backed store (measured by
``benchmarks/bench_f9_server_throughput.py``).  Two knobs bound the
buffer: ``flush_records`` (flush when this many records are pending) and
``flush_interval_s`` (flush when the oldest pending record is this old).
Reads always see buffered writes — every query method flushes first — so
batching never changes query results, only durability latency.  File
stores run in WAL mode with ``synchronous=NORMAL`` so a flush is one
cheap WAL append instead of two fsyncs.  ``flush()`` forces the buffer
out; ``close()`` flushes and then closes the connection.  Pass
``batch_writes=False`` to get the historical row-at-a-time behaviour
(one ``execute`` per record, commit on :meth:`commit`) — kept as the
benchmark baseline.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.monitor.records import (
    Direction,
    NeighborObservation,
    PacketRecord,
    StatusRecord,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS packet_records (
    node INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    ts REAL NOT NULL,
    direction TEXT NOT NULL,
    src INTEGER NOT NULL,
    dst INTEGER NOT NULL,
    next_hop INTEGER NOT NULL,
    prev_hop INTEGER NOT NULL,
    ptype INTEGER NOT NULL,
    packet_id INTEGER NOT NULL,
    size_bytes INTEGER NOT NULL,
    rssi REAL,
    snr REAL,
    airtime REAL,
    attempt INTEGER NOT NULL,
    PRIMARY KEY (node, seq)
);
CREATE INDEX IF NOT EXISTS idx_packet_ts ON packet_records (ts);
CREATE INDEX IF NOT EXISTS idx_packet_src ON packet_records (src);

CREATE TABLE IF NOT EXISTS status_records (
    node INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    ts REAL NOT NULL,
    uptime_s REAL NOT NULL,
    queue_depth INTEGER NOT NULL,
    route_count INTEGER NOT NULL,
    neighbor_count INTEGER NOT NULL,
    battery_v REAL NOT NULL,
    tx_frames INTEGER NOT NULL,
    tx_airtime_s REAL NOT NULL,
    retransmissions INTEGER NOT NULL,
    drops INTEGER NOT NULL,
    duty REAL NOT NULL,
    originated INTEGER NOT NULL,
    delivered INTEGER NOT NULL,
    forwarded INTEGER NOT NULL,
    neighbors_json TEXT NOT NULL,
    PRIMARY KEY (node, seq)
);
CREATE INDEX IF NOT EXISTS idx_status_ts ON status_records (node, ts);

CREATE TABLE IF NOT EXISTS batches (
    node INTEGER PRIMARY KEY,
    last_seen REAL NOT NULL,
    dropped INTEGER NOT NULL
);
"""


_PACKET_INSERT = (
    "INSERT OR REPLACE INTO packet_records VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)"
)
_STATUS_INSERT = (
    "INSERT OR REPLACE INTO status_records VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)"
)


@dataclass
class FlushStats:
    """Counters for the buffered write path ("monitor the monitor")."""

    flushes: int = 0
    records_flushed: int = 0
    last_latency_s: float = 0.0
    max_latency_s: float = 0.0
    total_latency_s: float = 0.0

    def note(self, records: int, latency_s: float) -> None:
        self.flushes += 1
        self.records_flushed += records
        self.last_latency_s = latency_s
        self.max_latency_s = max(self.max_latency_s, latency_s)
        self.total_latency_s += latency_s


def _packet_row(record: PacketRecord) -> Tuple:
    return (
        record.node, record.seq, record.timestamp, record.direction.value,
        record.src, record.dst, record.next_hop, record.prev_hop,
        record.ptype, record.packet_id, record.size_bytes,
        record.rssi_dbm, record.snr_db, record.airtime_s, record.attempt,
    )


def _status_row(record: StatusRecord) -> Tuple:
    neighbors_json = json.dumps([n.to_json_dict() for n in record.neighbors])
    return (
        record.node, record.seq, record.timestamp, record.uptime_s,
        record.queue_depth, record.route_count, record.neighbor_count,
        record.battery_v, record.tx_frames, record.tx_airtime_s,
        record.retransmissions, record.drops, record.duty_utilisation,
        record.originated, record.delivered, record.forwarded,
        neighbors_json,
    )


class SqliteMetricsStore:
    """Metrics store persisted in SQLite.

    API-compatible with :class:`~repro.monitor.storage.MetricsStore`.
    Unlike the in-memory store there is no retention bound; ``evictions``
    is always 0.

    Args:
        path: ``":memory:"`` (ephemeral) or a file path (durable).
        flush_records: flush the write buffer once this many records are
            pending (the high-throughput knob; 1 effectively disables
            batching).
        flush_interval_s: also flush when the oldest buffered record has
            been pending this long, bounding staleness under light load.
            ``None`` disables the age trigger.
        batch_writes: ``False`` restores the historical row-at-a-time
            path (one ``execute`` per record); used as the benchmark
            baseline and for callers that need per-record durability.
        wal: use WAL journal mode + ``synchronous=NORMAL`` on file-backed
            stores.  Ignored for ``":memory:"``.
        clock: time source for the age trigger (monotonic seconds);
            injectable for tests and simulations.
    """

    def __init__(
        self,
        path: str = ":memory:",
        flush_records: int = 1000,
        flush_interval_s: Optional[float] = 1.0,
        batch_writes: bool = True,
        wal: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if flush_records < 1:
            raise StorageError(f"flush_records must be >= 1, got {flush_records}")
        if flush_interval_s is not None and flush_interval_s <= 0:
            raise StorageError(
                f"flush_interval_s must be > 0 or None, got {flush_interval_s}"
            )
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._file_backed = path != ":memory:"
        if self._file_backed and wal:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA temp_store=MEMORY")
        self._conn.execute("PRAGMA cache_size=-8192")  # 8 MiB page cache
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self._flush_records = flush_records
        self._flush_interval = flush_interval_s
        self._batch_writes = batch_writes
        self._clock = clock or time.monotonic
        self._packet_buffer: List[Tuple] = []
        self._status_buffer: List[Tuple] = []
        self._oldest_pending_at: Optional[float] = None
        self._closed = False
        self.flush_stats = FlushStats()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Flush any buffered writes, then close the connection.

        Idempotent: a second close (e.g. an owner's ``close()`` after a
        ``with`` block already exited) is a no-op.
        """
        if self._closed:
            return
        self.flush()
        self._conn.close()
        self._closed = True

    def __enter__(self) -> "SqliteMetricsStore":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- writes ---------------------------------------------------------------

    @property
    def pending_records(self) -> int:
        """Records buffered but not yet written to SQLite."""
        return len(self._packet_buffer) + len(self._status_buffer)

    def add_packet_record(self, record: PacketRecord) -> None:
        if not self._batch_writes:
            try:
                self._conn.execute(_PACKET_INSERT, _packet_row(record))
            except sqlite3.Error as exc:
                raise StorageError(f"sqlite insert failed: {exc}") from exc
            return
        self._packet_buffer.append(_packet_row(record))
        self._note_pending()
        self._flush_if_due()

    def add_packet_records(self, records: Iterable[PacketRecord]) -> None:
        """Buffer many packet records at once (the server's batch path)."""
        if not self._batch_writes:
            for record in records:
                self.add_packet_record(record)
            return
        self._packet_buffer.extend(_packet_row(record) for record in records)
        self._note_pending()
        self._flush_if_due()

    def add_status_record(self, record: StatusRecord) -> None:
        if not self._batch_writes:
            try:
                self._conn.execute(_STATUS_INSERT, _status_row(record))
            except sqlite3.Error as exc:
                raise StorageError(f"sqlite insert failed: {exc}") from exc
            return
        self._status_buffer.append(_status_row(record))
        self._note_pending()
        self._flush_if_due()

    def add_status_records(self, records: Iterable[StatusRecord]) -> None:
        """Buffer many status records at once (the server's batch path)."""
        if not self._batch_writes:
            for record in records:
                self.add_status_record(record)
            return
        self._status_buffer.extend(_status_row(record) for record in records)
        self._note_pending()
        self._flush_if_due()

    def note_batch(self, node: int, received_at: float, dropped_records: int) -> None:
        self._conn.execute(
            "INSERT INTO batches (node, last_seen, dropped) VALUES (?,?,?) "
            "ON CONFLICT(node) DO UPDATE SET last_seen=excluded.last_seen, "
            "dropped=batches.dropped+excluded.dropped",
            (node, received_at, dropped_records),
        )

    def _note_pending(self) -> None:
        if self._oldest_pending_at is None:
            self._oldest_pending_at = self._clock()

    def _flush_if_due(self) -> None:
        if self.pending_records >= self._flush_records:
            self.flush()
        elif (
            self._flush_interval is not None
            and self._oldest_pending_at is not None
            and self._clock() - self._oldest_pending_at >= self._flush_interval
        ):
            self.flush()

    def maybe_flush(self) -> bool:
        """Flush only when a size/age threshold is due.

        The server calls this once per ingested batch; with
        ``batch_writes=False`` it degenerates to a plain commit (the
        historical once-per-batch durability).
        Returns True when a write to SQLite happened.
        """
        if not self._batch_writes:
            self._conn.commit()
            return True
        before = self.flush_stats.flushes
        self._flush_if_due()
        return self.flush_stats.flushes != before

    def flush(self) -> bool:
        """Write all buffered records via ``executemany`` and commit.

        Returns True when anything was pending.
        """
        pending = self.pending_records
        if not pending:
            self._conn.commit()  # cover note_batch-only writes
            return False
        started = time.perf_counter()
        try:
            if self._packet_buffer:
                self._conn.executemany(_PACKET_INSERT, self._packet_buffer)
            if self._status_buffer:
                self._conn.executemany(_STATUS_INSERT, self._status_buffer)
            self._conn.commit()
        except sqlite3.Error as exc:
            raise StorageError(f"sqlite batch insert failed: {exc}") from exc
        self._packet_buffer.clear()
        self._status_buffer.clear()
        self._oldest_pending_at = None
        self.flush_stats.note(pending, time.perf_counter() - started)
        return True

    def commit(self) -> None:
        """Flush buffered writes and commit (back-compat alias)."""
        self.flush()

    def journal_mode(self) -> str:
        """The active SQLite journal mode (``wal`` for tuned file stores)."""
        return self._conn.execute("PRAGMA journal_mode").fetchone()[0]

    # -- reads ----------------------------------------------------------------

    def _read_ready(self) -> None:
        """Make buffered writes visible before any query (read-your-writes)."""
        if self.pending_records:
            self.flush()

    def _packet_from_row(self, row: Tuple) -> PacketRecord:
        (node, seq, ts, direction, src, dst, next_hop, prev_hop,
         ptype, packet_id, size_bytes, rssi, snr, airtime, attempt) = row
        return PacketRecord(
            node=node, seq=seq, timestamp=ts, direction=Direction(direction),
            src=src, dst=dst, next_hop=next_hop, prev_hop=prev_hop,
            ptype=ptype, packet_id=packet_id, size_bytes=size_bytes,
            rssi_dbm=rssi, snr_db=snr, airtime_s=airtime, attempt=attempt,
        )

    def _status_from_row(self, row: Tuple) -> StatusRecord:
        (node, seq, ts, uptime_s, queue_depth, route_count, neighbor_count,
         battery_v, tx_frames, tx_airtime_s, retransmissions, drops, duty,
         originated, delivered, forwarded, neighbors_json) = row
        neighbors = tuple(
            NeighborObservation.from_json_dict(item)
            for item in json.loads(neighbors_json)
        )
        return StatusRecord(
            node=node, seq=seq, timestamp=ts, uptime_s=uptime_s,
            queue_depth=queue_depth, route_count=route_count,
            neighbor_count=neighbor_count, battery_v=battery_v,
            tx_frames=tx_frames, tx_airtime_s=tx_airtime_s,
            retransmissions=retransmissions, drops=drops, duty_utilisation=duty,
            originated=originated, delivered=delivered, forwarded=forwarded,
            neighbors=neighbors,
        )

    def nodes(self) -> List[int]:
        self._read_ready()
        rows = self._conn.execute(
            "SELECT node FROM packet_records UNION SELECT node FROM status_records "
            "UNION SELECT node FROM batches ORDER BY 1"
        ).fetchall()
        return [row[0] for row in rows]

    def packet_records(
        self,
        node: Optional[int] = None,
        direction: Optional[Direction] = None,
        ptype: Optional[int] = None,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Iterator[PacketRecord]:
        clauses = []
        params: List = []
        for column, value in (
            ("node", node), ("ptype", ptype), ("src", src), ("dst", dst),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if direction is not None:
            clauses.append("direction = ?")
            params.append(direction.value)
        if since is not None:
            clauses.append("ts >= ?")
            params.append(since)
        if until is not None:
            clauses.append("ts <= ?")
            params.append(until)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        self._read_ready()
        cursor = self._conn.execute(
            f"SELECT * FROM packet_records{where} ORDER BY node, seq", params
        )
        for row in cursor:
            yield self._packet_from_row(row)

    def status_records(
        self,
        node: int,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Iterator[StatusRecord]:
        clauses = ["node = ?"]
        params: List = [node]
        if since is not None:
            clauses.append("ts >= ?")
            params.append(since)
        if until is not None:
            clauses.append("ts <= ?")
            params.append(until)
        self._read_ready()
        cursor = self._conn.execute(
            f"SELECT * FROM status_records WHERE {' AND '.join(clauses)} ORDER BY seq",
            params,
        )
        for row in cursor:
            yield self._status_from_row(row)

    def latest_status(self, node: int) -> Optional[StatusRecord]:
        self._read_ready()
        row = self._conn.execute(
            "SELECT * FROM status_records WHERE node = ? ORDER BY seq DESC LIMIT 1",
            (node,),
        ).fetchone()
        return self._status_from_row(row) if row else None

    def status_series(
        self,
        node: int,
        fields: List[str],
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[Dict[str, float]]:
        series = []
        for record in self.status_records(node, since=since, until=until):
            point: Dict[str, float] = {"ts": record.timestamp}
            for name in fields:
                if not hasattr(record, name):
                    raise StorageError(f"unknown status field {name!r}")
                point[name] = float(getattr(record, name))
            series.append(point)
        return series

    def last_seen(self, node: int) -> Optional[float]:
        row = self._conn.execute(
            "SELECT last_seen FROM batches WHERE node = ?", (node,)
        ).fetchone()
        return row[0] if row else None

    def reported_drops(self, node: int) -> int:
        row = self._conn.execute(
            "SELECT dropped FROM batches WHERE node = ?", (node,)
        ).fetchone()
        return row[0] if row else 0

    def packet_record_count(self, node: Optional[int] = None) -> int:
        self._read_ready()
        if node is not None:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM packet_records WHERE node = ?", (node,)
            ).fetchone()
        else:
            row = self._conn.execute("SELECT COUNT(*) FROM packet_records").fetchone()
        return row[0]

    def status_record_count(self, node: Optional[int] = None) -> int:
        self._read_ready()
        if node is not None:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM status_records WHERE node = ?", (node,)
            ).fetchone()
        else:
            row = self._conn.execute("SELECT COUNT(*) FROM status_records").fetchone()
        return row[0]

    @property
    def evictions(self) -> int:
        return 0

    def time_bounds(self) -> Optional[tuple]:
        self._read_ready()
        row = self._conn.execute(
            "SELECT MIN(ts), MAX(ts) FROM packet_records"
        ).fetchone()
        if row is None or row[0] is None:
            return None
        return (row[0], row[1])


def sqlite_store_factory(
    directory: str,
    flush_records: int = 1000,
    flush_interval_s: Optional[float] = 1.0,
    clock: Optional[Callable[[], float]] = None,
) -> Callable[[str], SqliteMetricsStore]:
    """Per-network durable store factory for a multi-tenant server.

    Returns a callable suitable for ``MonitorServer(store_factory=...)``
    (and :class:`~repro.monitor.registry.NetworkRegistry`): each newly
    seen network gets its own SQLite file ``<directory>/<network>.sqlite``,
    so tenants never share a database and an evicted shard's file simply
    waits on disk for the network to report again.

    Network ids are pre-validated (``[A-Za-z0-9][A-Za-z0-9_.-]*``), so
    they are safe as file names.
    """

    def factory(network_id: str) -> SqliteMetricsStore:
        return SqliteMetricsStore(  # reprolint: allow[RL006] -- the registry owns shard stores; close() flushes and closes every one
            path=os.path.join(directory, f"{network_id}.sqlite"),
            flush_records=flush_records,
            flush_interval_s=flush_interval_s,
            clock=clock,
        )

    return factory
