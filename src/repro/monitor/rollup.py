"""Time-series rollups (downsampling) for long-running servers.

Raw per-packet records grow without bound; dashboards plotting a week of
history want fixed-interval aggregates instead.  A :class:`RollupSeries`
buckets samples into intervals and keeps count/sum/min/max per bucket;
:func:`rollup_packet_rate` and :func:`rollup_status_field` build the two
rollups the dashboard's history panels need.  Rollups read one store, so
on a multi-tenant server they are per-network by construction (the
``/api/v1/networks/<id>/history`` route passes that network's shard).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from repro.errors import ConfigurationError
from repro.monitor.records import Direction
from repro.monitor.storage import MetricsStore


@dataclass
class Bucket:
    """Aggregates for one rollup interval."""

    start: float
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        if not self.count:
            return math.nan
        # Float accumulation in `total` can put total/count an ulp outside
        # [minimum, maximum]; clamp so the invariant min <= mean <= max
        # holds exactly for consumers (dashboard bars, the history API).
        return min(max(self.total / self.count, self.minimum), self.maximum)


class RollupSeries:
    """Fixed-interval bucketing of (timestamp, value) samples."""

    def __init__(self, interval_s: float, origin: float = 0.0) -> None:
        if interval_s <= 0:
            raise ConfigurationError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = interval_s
        self.origin = origin
        self._buckets: Dict[int, Bucket] = {}

    def add(self, timestamp: float, value: float) -> None:
        index = int((timestamp - self.origin) // self.interval_s)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = Bucket(start=self.origin + index * self.interval_s)
            self._buckets[index] = bucket
        bucket.add(value)

    def buckets(self) -> List[Bucket]:
        """Buckets in time order (gaps are simply absent)."""
        return [self._buckets[index] for index in sorted(self._buckets)]

    def __len__(self) -> int:
        return len(self._buckets)


def bucket_document(bucket: Bucket, interval_s: float) -> Dict[str, Any]:
    """One bucket as the JSON object the history route and the stream share."""
    return {
        "start": bucket.start,
        "interval_s": interval_s,
        "count": bucket.count,
        "mean": bucket.mean,
        "min": bucket.minimum,
        "max": bucket.maximum,
    }


class IncrementalRollup(RollupSeries):
    """A :class:`RollupSeries` fed sample-by-sample at ingest time.

    Same bucket math as the batch rollup — the math *is* the parent's,
    so a store replayed record-by-record lands in bucket-identical
    state (a property test pins this, including out-of-order and
    duplicate timestamps).  On top of it, the incremental rollup tracks
    which buckets changed since the last :meth:`drain_updates` call;
    those are exactly the ``rollup-update`` delta events the push
    pipeline publishes, so the stream carries O(changed buckets) per
    batch instead of the whole series.
    """

    def __init__(self, interval_s: float, origin: float = 0.0) -> None:
        super().__init__(interval_s, origin=origin)
        self._dirty: Set[int] = set()

    def add(self, timestamp: float, value: float) -> None:
        super().add(timestamp, value)
        self._dirty.add(int((timestamp - self.origin) // self.interval_s))

    @property
    def pending_updates(self) -> int:
        """Buckets changed since the last drain."""
        return len(self._dirty)

    def drain_updates(self) -> List[Bucket]:
        """The buckets touched since the last drain, in time order."""
        if not self._dirty:
            return []
        dirty, self._dirty = self._dirty, set()
        return [self._buckets[index] for index in sorted(dirty)]


def rollup_packet_rate(
    store: MetricsStore,
    interval_s: float = 300.0,
    node: Optional[int] = None,
    direction: Optional[Direction] = None,
) -> RollupSeries:
    """Frames observed per interval (count per bucket = frames; the mean
    field carries frame sizes for a bytes view)."""
    series = RollupSeries(interval_s=interval_s)
    for record in store.packet_records(node=node, direction=direction):
        series.add(record.timestamp, float(record.size_bytes))
    return series


def rollup_status_field(
    store: MetricsStore,
    node: int,
    field: str,
    interval_s: float = 300.0,
) -> RollupSeries:
    """Rollup of one status field (queue depth, duty, battery, ...)."""
    series = RollupSeries(interval_s=interval_s)
    for point in store.status_series(node, [field]):
        series.add(point["ts"], point[field])
    return series
