"""Alerting over the metrics store.

Rules inspect the store and report *conditions*; the engine turns
conditions into stateful alerts (raised once, cleared when the condition
disappears, kept in history) — what a network administrator watching the
paper's dashboard would act on.

An engine watches one store; a multi-tenant server gives each network
its own store (and the HTTP layer its own engine), so alert state never
crosses tenants — node 7 going silent on campus A raises nothing for
node 7 on campus B.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.monitor import metrics
from repro.monitor.storage import MetricsStore


@dataclass(frozen=True)
class Alert:
    """One active or historical alert."""

    rule: str
    node: Optional[int]
    severity: str
    message: str
    raised_at: float

    def to_json_dict(self) -> Dict[str, object]:
        """The alert as the JSON object the API and the stream share."""
        return {
            "rule": self.rule,
            "node": self.node,
            "severity": self.severity,
            "message": self.message,
            "raised_at": self.raised_at,
        }


@dataclass(frozen=True)
class NodeDelta:
    """Latest in-memory state of one node, for the O(delta) alert path.

    Built by the ingest pipeline from the aggregates it already
    maintains (no store reads); fields the server does not know yet are
    None, and rules that need a None field answer "cannot judge" rather
    than clearing.
    """

    node: int
    last_seen: Optional[float] = None
    battery_v: Optional[float] = None
    duty_utilisation: Optional[float] = None
    queue_depth: Optional[int] = None


class AlertRule(ABC):
    """A condition evaluated against the store."""

    #: Stable rule identifier used for alert state keys.
    name: str = "rule"
    severity: str = "warning"

    @abstractmethod
    def conditions(self, store: MetricsStore, now: float) -> List[Tuple[Optional[int], str]]:
        """Return (node, message) for every currently firing condition."""

    def node_conditions(self, delta: "NodeDelta", now: float) -> Optional[List[str]]:
        """Firing messages for one node's delta, or None if not judgeable.

        The O(delta) path: when a batch arrives the engine re-evaluates
        only the rules that can judge one node from the in-memory
        :class:`NodeDelta` snapshot the ingest pipeline hands over — no
        store reads at all, so the path never blocks on a durable store.
        Return None when this rule cannot judge from the delta (the
        condition is cross-node or windowed, like PDR over a traffic
        window, or the delta lacks the field): the rule then stays on
        the periodic :meth:`AlertEngine.evaluate` sweep and existing
        alert state is left untouched.  Return ``[]`` for judged-and-not
        -firing (clears an active alert).
        """
        return None


class SilentNodeRule(AlertRule):
    """A node known to the server stopped sending batches."""

    name = "silent_node"
    severity = "critical"

    def __init__(self, max_silence_s: float) -> None:
        self.max_silence_s = max_silence_s

    def conditions(self, store: MetricsStore, now: float) -> List[Tuple[Optional[int], str]]:
        firing = []
        for node in store.nodes():
            last = store.last_seen(node)
            if last is None:
                continue
            silence = now - last
            if silence > self.max_silence_s:
                firing.append((node, f"no telemetry for {silence:.0f}s"))
        return firing

    def node_conditions(self, delta: "NodeDelta", now: float) -> Optional[List[str]]:
        # A delta can only *clear* silence (the node just reported);
        # raising still needs the periodic sweep — absence of telemetry
        # produces no delta to observe.
        if delta.last_seen is None:
            return None
        silence = now - delta.last_seen
        if silence > self.max_silence_s:
            return [f"no telemetry for {silence:.0f}s"]
        return []


class LowPdrRule(AlertRule):
    """Delivery from some source fell below a threshold."""

    name = "low_pdr"
    severity = "warning"

    def __init__(self, threshold: float = 0.8, window_s: float = 1800.0, min_sent: int = 5) -> None:
        self.threshold = threshold
        self.window_s = window_s
        self.min_sent = min_sent

    def conditions(self, store: MetricsStore, now: float) -> List[Tuple[Optional[int], str]]:
        firing = []
        pairs = metrics.pdr_matrix(store, since=now - self.window_s, until=now)
        for (src, dst), pair in sorted(pairs.items()):
            if pair.sent < self.min_sent:
                continue
            if not math.isnan(pair.pdr) and pair.pdr < self.threshold:
                firing.append(
                    (src, f"PDR {pair.pdr:.0%} to node {dst} ({pair.delivered}/{pair.sent})")
                )
        return firing


class DutyCycleRule(AlertRule):
    """A node's reported duty-cycle utilisation is close to the cap."""

    name = "duty_cycle"
    severity = "warning"

    def __init__(self, threshold: float = 0.8) -> None:
        self.threshold = threshold

    def conditions(self, store: MetricsStore, now: float) -> List[Tuple[Optional[int], str]]:
        firing = []
        for node in store.nodes():
            status = store.latest_status(node)
            if status is not None and status.duty_utilisation >= self.threshold:
                firing.append(
                    (node, f"duty-cycle utilisation {status.duty_utilisation:.0%} of budget")
                )
        return firing

    def node_conditions(self, delta: "NodeDelta", now: float) -> Optional[List[str]]:
        if delta.duty_utilisation is None:
            return None  # no status seen yet; cannot judge
        if delta.duty_utilisation >= self.threshold:
            return [f"duty-cycle utilisation {delta.duty_utilisation:.0%} of budget"]
        return []


class BatteryLowRule(AlertRule):
    """A node's battery voltage dropped below the threshold."""

    name = "battery_low"
    severity = "warning"

    def __init__(self, threshold_v: float = 3.4) -> None:
        self.threshold_v = threshold_v

    def conditions(self, store: MetricsStore, now: float) -> List[Tuple[Optional[int], str]]:
        firing = []
        for node in store.nodes():
            status = store.latest_status(node)
            if status is not None and status.battery_v < self.threshold_v:
                firing.append((node, f"battery at {status.battery_v:.2f} V"))
        return firing

    def node_conditions(self, delta: "NodeDelta", now: float) -> Optional[List[str]]:
        if delta.battery_v is None:
            return None  # no status seen yet; cannot judge
        if delta.battery_v < self.threshold_v:
            return [f"battery at {delta.battery_v:.2f} V"]
        return []


class QueueBacklogRule(AlertRule):
    """A node's MAC queue keeps growing (congestion)."""

    name = "queue_backlog"
    severity = "warning"

    def __init__(self, threshold: int = 10) -> None:
        self.threshold = threshold

    def conditions(self, store: MetricsStore, now: float) -> List[Tuple[Optional[int], str]]:
        firing = []
        for node in store.nodes():
            status = store.latest_status(node)
            if status is not None and status.queue_depth >= self.threshold:
                firing.append((node, f"MAC queue depth {status.queue_depth}"))
        return firing

    def node_conditions(self, delta: "NodeDelta", now: float) -> Optional[List[str]]:
        if delta.queue_depth is None:
            return None  # no status seen yet; cannot judge
        if delta.queue_depth >= self.threshold:
            return [f"MAC queue depth {delta.queue_depth}"]
        return []


def default_rules(report_interval_s: float = 60.0) -> List[AlertRule]:
    """The rule set the examples and experiments use.

    Silence threshold is 3 missed report intervals plus slack.
    """
    return [
        SilentNodeRule(max_silence_s=report_interval_s * 3 + 10.0),
        LowPdrRule(),
        DutyCycleRule(),
        BatteryLowRule(),
        QueueBacklogRule(),
    ]


#: Default bound on the alert history ring.
DEFAULT_HISTORY_LIMIT = 256


class AlertEngine:
    """Stateful alert evaluation.

    Two entry points share the same alert state:

    * :meth:`evaluate` — the periodic full sweep over every rule.
    * :meth:`observe` — the O(delta) path the ingest pipeline calls
      with just the nodes a batch touched; only rules that implement
      :meth:`AlertRule.node_conditions` participate.

    History is a bounded ring (``deque(maxlen=...)``) so a long-running
    server's memory does not grow with alert churn; the cumulative
    :attr:`alerts_emitted` counter keeps the total observable after
    eviction.
    """

    def __init__(
        self,
        store: MetricsStore,
        rules: Optional[List[AlertRule]] = None,
        history_limit: int = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        self.store = store
        self.rules = rules if rules is not None else default_rules()
        self._active: Dict[Tuple[str, Optional[int]], Alert] = {}
        self.history: Deque[Alert] = deque(maxlen=history_limit)
        #: Alerts raised over the engine's lifetime (history may have
        #: evicted some; this counter never resets).
        self.alerts_emitted = 0
        #: Notification sinks: called with each newly raised alert.
        self.on_raise: List = []
        #: Notification sinks: called with each alert that just cleared.
        self.on_clear: List = []

    @property
    def history_len(self) -> int:
        """Alerts currently retained in the bounded history ring."""
        return len(self.history)

    def _raise(self, rule: AlertRule, node: Optional[int], message: str, now: float) -> Alert:
        alert = Alert(
            rule=rule.name,
            node=node,
            severity=rule.severity,
            message=message,
            raised_at=now,
        )
        self._active[(rule.name, node)] = alert
        self.history.append(alert)
        self.alerts_emitted += 1
        for sink in self.on_raise:
            sink(alert)
        return alert

    def _clear(self, key: Tuple[str, Optional[int]]) -> Alert:
        cleared = self._active.pop(key)
        for sink in self.on_clear:
            sink(cleared)
        return cleared

    def evaluate(self, now: float) -> List[Alert]:
        """Re-evaluate all rules; returns newly *raised* alerts.

        Conditions that persist stay active without re-raising; conditions
        that disappeared are cleared.
        """
        raised: List[Alert] = []
        firing_keys = set()
        for rule in self.rules:
            for node, message in rule.conditions(self.store, now):
                key = (rule.name, node)
                firing_keys.add(key)
                if key in self._active:
                    continue
                raised.append(self._raise(rule, node, message, now))
        for key in list(self._active):
            if key not in firing_keys:
                self._clear(key)
        return raised

    def evaluate_changes(self, now: float) -> Tuple[List[Alert], List[Alert]]:
        """Full sweep returning ``(raised, cleared)``.

        Same evaluation as :meth:`evaluate`, but also reports the
        alerts the sweep cleared — the shape the push pipeline needs to
        publish ``alert-raised``/``alert-cleared`` stream events from
        the periodic sweep (matching :meth:`observe`'s return).
        """
        before = dict(self._active)
        raised = self.evaluate(now)
        cleared = [
            alert for key, alert in before.items() if key not in self._active
        ]
        return raised, cleared

    def observe(
        self, now: float, deltas: Iterable["NodeDelta"]
    ) -> Tuple[List[Alert], List[Alert]]:
        """O(delta) evaluation from in-memory node snapshots.

        The ingest pipeline hands one :class:`NodeDelta` per node a
        batch touched; no store reads happen, so this is safe (and
        cheap) under the server lock.  Only rules that can judge one
        node from its snapshot take part (those returning non-None from
        :meth:`AlertRule.node_conditions`).  Returns ``(raised,
        cleared)`` — the push pipeline publishes both as stream events.
        Alerts raised by other rule/node combinations are untouched, so
        the periodic :meth:`evaluate` sweep and this path compose.
        """
        raised: List[Alert] = []
        cleared: List[Alert] = []
        for delta in deltas:
            for rule in self.rules:
                messages = rule.node_conditions(delta, now)
                if messages is None:
                    continue  # not judgeable from this delta; sweep owns it
                key = (rule.name, delta.node)
                if messages:
                    if key not in self._active:
                        raised.append(self._raise(rule, delta.node, messages[0], now))
                elif key in self._active:
                    cleared.append(self._clear(key))
        return raised, cleared

    def active(self) -> List[Alert]:
        """Currently firing alerts, oldest first."""
        return sorted(self._active.values(), key=lambda alert: alert.raised_at)
