"""Alerting over the metrics store.

Rules inspect the store and report *conditions*; the engine turns
conditions into stateful alerts (raised once, cleared when the condition
disappears, kept in history) — what a network administrator watching the
paper's dashboard would act on.

An engine watches one store; a multi-tenant server gives each network
its own store (and the HTTP layer its own engine), so alert state never
crosses tenants — node 7 going silent on campus A raises nothing for
node 7 on campus B.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.monitor import metrics
from repro.monitor.storage import MetricsStore


@dataclass(frozen=True)
class Alert:
    """One active or historical alert."""

    rule: str
    node: Optional[int]
    severity: str
    message: str
    raised_at: float


class AlertRule(ABC):
    """A condition evaluated against the store."""

    #: Stable rule identifier used for alert state keys.
    name: str = "rule"
    severity: str = "warning"

    @abstractmethod
    def conditions(self, store: MetricsStore, now: float) -> List[Tuple[Optional[int], str]]:
        """Return (node, message) for every currently firing condition."""


class SilentNodeRule(AlertRule):
    """A node known to the server stopped sending batches."""

    name = "silent_node"
    severity = "critical"

    def __init__(self, max_silence_s: float) -> None:
        self.max_silence_s = max_silence_s

    def conditions(self, store: MetricsStore, now: float) -> List[Tuple[Optional[int], str]]:
        firing = []
        for node in store.nodes():
            last = store.last_seen(node)
            if last is None:
                continue
            silence = now - last
            if silence > self.max_silence_s:
                firing.append((node, f"no telemetry for {silence:.0f}s"))
        return firing


class LowPdrRule(AlertRule):
    """Delivery from some source fell below a threshold."""

    name = "low_pdr"
    severity = "warning"

    def __init__(self, threshold: float = 0.8, window_s: float = 1800.0, min_sent: int = 5) -> None:
        self.threshold = threshold
        self.window_s = window_s
        self.min_sent = min_sent

    def conditions(self, store: MetricsStore, now: float) -> List[Tuple[Optional[int], str]]:
        firing = []
        pairs = metrics.pdr_matrix(store, since=now - self.window_s, until=now)
        for (src, dst), pair in sorted(pairs.items()):
            if pair.sent < self.min_sent:
                continue
            if not math.isnan(pair.pdr) and pair.pdr < self.threshold:
                firing.append(
                    (src, f"PDR {pair.pdr:.0%} to node {dst} ({pair.delivered}/{pair.sent})")
                )
        return firing


class DutyCycleRule(AlertRule):
    """A node's reported duty-cycle utilisation is close to the cap."""

    name = "duty_cycle"
    severity = "warning"

    def __init__(self, threshold: float = 0.8) -> None:
        self.threshold = threshold

    def conditions(self, store: MetricsStore, now: float) -> List[Tuple[Optional[int], str]]:
        firing = []
        for node in store.nodes():
            status = store.latest_status(node)
            if status is not None and status.duty_utilisation >= self.threshold:
                firing.append(
                    (node, f"duty-cycle utilisation {status.duty_utilisation:.0%} of budget")
                )
        return firing


class BatteryLowRule(AlertRule):
    """A node's battery voltage dropped below the threshold."""

    name = "battery_low"
    severity = "warning"

    def __init__(self, threshold_v: float = 3.4) -> None:
        self.threshold_v = threshold_v

    def conditions(self, store: MetricsStore, now: float) -> List[Tuple[Optional[int], str]]:
        firing = []
        for node in store.nodes():
            status = store.latest_status(node)
            if status is not None and status.battery_v < self.threshold_v:
                firing.append((node, f"battery at {status.battery_v:.2f} V"))
        return firing


class QueueBacklogRule(AlertRule):
    """A node's MAC queue keeps growing (congestion)."""

    name = "queue_backlog"
    severity = "warning"

    def __init__(self, threshold: int = 10) -> None:
        self.threshold = threshold

    def conditions(self, store: MetricsStore, now: float) -> List[Tuple[Optional[int], str]]:
        firing = []
        for node in store.nodes():
            status = store.latest_status(node)
            if status is not None and status.queue_depth >= self.threshold:
                firing.append((node, f"MAC queue depth {status.queue_depth}"))
        return firing


def default_rules(report_interval_s: float = 60.0) -> List[AlertRule]:
    """The rule set the examples and experiments use.

    Silence threshold is 3 missed report intervals plus slack.
    """
    return [
        SilentNodeRule(max_silence_s=report_interval_s * 3 + 10.0),
        LowPdrRule(),
        DutyCycleRule(),
        BatteryLowRule(),
        QueueBacklogRule(),
    ]


class AlertEngine:
    """Stateful alert evaluation."""

    def __init__(self, store: MetricsStore, rules: Optional[List[AlertRule]] = None) -> None:
        self.store = store
        self.rules = rules if rules is not None else default_rules()
        self._active: Dict[Tuple[str, Optional[int]], Alert] = {}
        self.history: List[Alert] = []
        #: Notification sinks: called with each newly raised alert.
        self.on_raise: List = []
        #: Notification sinks: called with each alert that just cleared.
        self.on_clear: List = []

    def evaluate(self, now: float) -> List[Alert]:
        """Re-evaluate all rules; returns newly *raised* alerts.

        Conditions that persist stay active without re-raising; conditions
        that disappeared are cleared.
        """
        raised: List[Alert] = []
        firing_keys = set()
        for rule in self.rules:
            for node, message in rule.conditions(self.store, now):
                key = (rule.name, node)
                firing_keys.add(key)
                if key in self._active:
                    continue
                alert = Alert(
                    rule=rule.name,
                    node=node,
                    severity=rule.severity,
                    message=message,
                    raised_at=now,
                )
                self._active[key] = alert
                self.history.append(alert)
                raised.append(alert)
                for sink in self.on_raise:
                    sink(alert)
        for key in list(self._active):
            if key not in firing_keys:
                cleared = self._active.pop(key)
                for sink in self.on_clear:
                    sink(cleared)
        return raised

    def active(self) -> List[Alert]:
        """Currently firing alerts, oldest first."""
        return sorted(self._active.values(), key=lambda alert: alert.raised_at)
