"""Metric aggregations over the metrics store.

These functions compute everything the dashboard shows, from raw packet
and status records:

* per-link quality (RSSI/SNR statistics per directed radio link),
* packet delivery ratio per (src, dst) pair, correlated by the
  origin-assigned packet id observed at both ends,
* traffic matrix (frames/bytes originated per pair),
* per-node airtime and duty-cycle utilisation,
* end-to-end delivery latency,
* per-packet route reconstruction (which nodes transmitted the packet),
* traffic composition by packet type,
* the network graph as reported by the nodes' own neighbor tables.

Every function takes one store, and on a multi-tenant server each
network has its own store (its shard), so all aggregations here are
naturally network-scoped — nothing ever mixes tenants; fleet-level
rollups live in :mod:`repro.monitor.fleet`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.mesh.addressing import BROADCAST
from repro.mesh.packet import PacketType
from repro.monitor.records import Direction
from repro.monitor.storage import MetricsStore


@dataclass
class LinkQuality:
    """RSSI/SNR statistics for one directed link (tx -> rx)."""

    tx: int
    rx: int
    frames: int = 0
    rssi_sum: float = 0.0
    rssi_min: float = math.inf
    rssi_max: float = -math.inf
    snr_sum: float = 0.0

    def add(self, rssi: float, snr: float) -> None:
        self.frames += 1
        self.rssi_sum += rssi
        self.snr_sum += snr
        self.rssi_min = min(self.rssi_min, rssi)
        self.rssi_max = max(self.rssi_max, rssi)

    @property
    def rssi_mean(self) -> float:
        return self.rssi_sum / self.frames if self.frames else math.nan

    @property
    def snr_mean(self) -> float:
        return self.snr_sum / self.frames if self.frames else math.nan


def link_quality(
    store: MetricsStore,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> Dict[Tuple[int, int], LinkQuality]:
    """Per-directed-link quality from IN records (prev_hop -> observer)."""
    links: Dict[Tuple[int, int], LinkQuality] = {}
    for record in store.packet_records(direction=Direction.IN, since=since, until=until):
        if record.rssi_dbm is None or record.snr_db is None:
            continue
        key = (record.prev_hop, record.node)
        link = links.get(key)
        if link is None:
            link = LinkQuality(tx=record.prev_hop, rx=record.node)
            links[key] = link
        link.add(record.rssi_dbm, record.snr_db)
    return links


@dataclass
class PairDelivery:
    """Observed delivery between one (src, dst) pair."""

    src: int
    dst: int
    sent_packet_ids: Set[int] = field(default_factory=set)
    delivered_packet_ids: Set[int] = field(default_factory=set)

    @property
    def sent(self) -> int:
        return len(self.sent_packet_ids)

    @property
    def delivered(self) -> int:
        return len(self.delivered_packet_ids & self.sent_packet_ids)

    @property
    def pdr(self) -> float:
        return self.delivered / self.sent if self.sent else math.nan


def pdr_matrix(
    store: MetricsStore,
    ptype: int = int(PacketType.DATA),
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> Dict[Tuple[int, int], PairDelivery]:
    """Packet delivery ratio per (src, dst), observed from both endpoints.

    A packet counts as *sent* when its origin reports an OUT record for it
    (first attempt) and as *delivered* when the destination reports an IN
    record with a matching (src, packet_id).  Only unicast pairs appear.
    """
    pairs: Dict[Tuple[int, int], PairDelivery] = {}

    def pair(src: int, dst: int) -> PairDelivery:
        key = (src, dst)
        entry = pairs.get(key)
        if entry is None:
            entry = PairDelivery(src=src, dst=dst)
            pairs[key] = entry
        return entry

    for record in store.packet_records(direction=Direction.OUT, ptype=ptype, since=since, until=until):
        if record.dst == BROADCAST:
            continue
        if record.node == record.src and record.attempt == 1:
            pair(record.src, record.dst).sent_packet_ids.add(record.packet_id)
    for record in store.packet_records(direction=Direction.IN, ptype=ptype, since=since, until=until):
        if record.dst == BROADCAST or record.node != record.dst:
            continue
        pair(record.src, record.dst).delivered_packet_ids.add(record.packet_id)
    return pairs


def network_pdr(
    store: MetricsStore,
    ptype: int = int(PacketType.DATA),
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> float:
    """Aggregate PDR across all unicast pairs (NaN when nothing was sent)."""
    pairs = pdr_matrix(store, ptype=ptype, since=since, until=until)
    sent = sum(p.sent for p in pairs.values())
    delivered = sum(p.delivered for p in pairs.values())
    return delivered / sent if sent else math.nan


@dataclass(frozen=True)
class TrafficCell:
    """Originated traffic for one (src, dst) pair."""

    src: int
    dst: int
    frames: int
    bytes: int


def traffic_matrix(
    store: MetricsStore,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> Dict[Tuple[int, int], TrafficCell]:
    """Frames/bytes originated per (src, dst), from first-attempt OUT records."""
    frames: Dict[Tuple[int, int], int] = {}
    sizes: Dict[Tuple[int, int], int] = {}
    for record in store.packet_records(direction=Direction.OUT, since=since, until=until):
        if record.node != record.src or record.attempt != 1:
            continue
        key = (record.src, record.dst)
        frames[key] = frames.get(key, 0) + 1
        sizes[key] = sizes.get(key, 0) + record.size_bytes
    return {
        key: TrafficCell(src=key[0], dst=key[1], frames=frames[key], bytes=sizes[key])
        for key in frames
    }


def airtime_by_node(
    store: MetricsStore,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> Dict[int, float]:
    """Total transmit airtime (s) per node from OUT records."""
    airtime: Dict[int, float] = {}
    for record in store.packet_records(direction=Direction.OUT, since=since, until=until):
        airtime[record.node] = airtime.get(record.node, 0.0) + (record.airtime_s or 0.0)
    return airtime


def duty_cycle_by_node(
    store: MetricsStore,
    window_s: float,
    until: Optional[float] = None,
) -> Dict[int, float]:
    """Airtime fraction per node over the trailing ``window_s`` seconds."""
    if until is None:
        bounds = store.time_bounds()
        until = bounds[1] if bounds else 0.0
    since = until - window_s
    return {
        node: airtime / window_s
        for node, airtime in airtime_by_node(store, since=since, until=until).items()
    }


@dataclass
class LatencyStats:
    """End-to-end latency samples for one (src, dst) pair."""

    src: int
    dst: int
    samples: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else math.nan

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) by nearest-rank."""
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        rank = max(int(math.ceil(q / 100.0 * len(ordered))) - 1, 0)
        return ordered[rank]


def delivery_latency(
    store: MetricsStore,
    ptype: int = int(PacketType.DATA),
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> Dict[Tuple[int, int], LatencyStats]:
    """Origin-to-destination latency per pair, correlated by packet id."""
    origin_ts: Dict[Tuple[int, int], float] = {}
    for record in store.packet_records(direction=Direction.OUT, ptype=ptype, since=since, until=until):
        if record.node != record.src or record.attempt != 1:
            continue
        key = (record.src, record.packet_id)
        if key not in origin_ts or record.timestamp < origin_ts[key]:
            origin_ts[key] = record.timestamp
    stats: Dict[Tuple[int, int], LatencyStats] = {}
    seen: Set[Tuple[int, int]] = set()
    for record in store.packet_records(direction=Direction.IN, ptype=ptype, since=since, until=until):
        if record.dst == BROADCAST or record.node != record.dst:
            continue
        key = (record.src, record.packet_id)
        if key in seen or key not in origin_ts:
            continue
        seen.add(key)
        pair_key = (record.src, record.dst)
        entry = stats.get(pair_key)
        if entry is None:
            entry = LatencyStats(src=record.src, dst=record.dst)
            stats[pair_key] = entry
        entry.samples.append(record.timestamp - origin_ts[key])
    return stats


def route_taken(store: MetricsStore, src: int, packet_id: int) -> List[Tuple[int, float]]:
    """Nodes that transmitted packet (src, packet_id), ordered by time.

    Reconstructs the forwarding path of one packet from OUT records —
    the per-packet drill-down view of the dashboard.
    """
    hops = [
        (record.node, record.timestamp)
        for record in store.packet_records(direction=Direction.OUT, src=src)
        if record.packet_id == packet_id and record.attempt == 1
    ]
    return sorted(hops, key=lambda item: item[1])


@dataclass(frozen=True)
class TypeBreakdownRow:
    """Traffic composition entry for one packet type."""

    ptype: int
    name: str
    frames_out: int
    bytes_out: int
    airtime_s: float


def type_breakdown(
    store: MetricsStore,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> List[TypeBreakdownRow]:
    """Transmitted frames/bytes/airtime per packet type (protocol overhead
    vs user payload — the composition panel)."""
    frames: Dict[int, int] = {}
    sizes: Dict[int, int] = {}
    airtime: Dict[int, float] = {}
    for record in store.packet_records(direction=Direction.OUT, since=since, until=until):
        frames[record.ptype] = frames.get(record.ptype, 0) + 1
        sizes[record.ptype] = sizes.get(record.ptype, 0) + record.size_bytes
        airtime[record.ptype] = airtime.get(record.ptype, 0.0) + (record.airtime_s or 0.0)
    rows = []
    for ptype in sorted(frames):
        try:
            name = PacketType(ptype).name
        except ValueError:
            name = f"UNKNOWN({ptype})"
        rows.append(
            TypeBreakdownRow(
                ptype=ptype,
                name=name,
                frames_out=frames[ptype],
                bytes_out=sizes[ptype],
                airtime_s=airtime[ptype],
            )
        )
    return rows


@dataclass(frozen=True)
class GraphEdge:
    """One directed edge of the reported neighbor graph."""

    tx: int
    rx: int
    rssi_dbm: float
    snr_db: float
    frames_heard: int


def neighbor_graph(store: MetricsStore) -> List[GraphEdge]:
    """Network graph as the nodes themselves report it.

    Each node's *latest* status record carries its neighbor table; the
    edge (neighbor -> node) means "node hears neighbor".
    """
    edges: List[GraphEdge] = []
    for node in store.nodes():
        status = store.latest_status(node)
        if status is None:
            continue
        for neighbor in status.neighbors:
            edges.append(
                GraphEdge(
                    tx=neighbor.address,
                    rx=node,
                    rssi_dbm=neighbor.rssi_dbm,
                    snr_db=neighbor.snr_db,
                    frames_heard=neighbor.frames_heard,
                )
            )
    return edges


def retransmission_rate(
    store: MetricsStore,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> Dict[int, float]:
    """Fraction of each node's DATA transmissions that were retries."""
    first: Dict[int, int] = {}
    retries: Dict[int, int] = {}
    for record in store.packet_records(direction=Direction.OUT, ptype=int(PacketType.DATA), since=since, until=until):
        if record.attempt == 1:
            first[record.node] = first.get(record.node, 0) + 1
        else:
            retries[record.node] = retries.get(record.node, 0) + 1
    result = {}
    for node in set(first) | set(retries):
        total = first.get(node, 0) + retries.get(node, 0)
        result[node] = retries.get(node, 0) / total if total else math.nan
    return result
