"""Telemetry export for offline analysis.

Dumps the metrics store to CSV (one file per record kind, spreadsheet
friendly) or JSONL (lossless, one record per line, reimportable).  This
is the interface between the live monitoring server and notebook-style
post-hoc analysis of a deployment.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Optional, Union

from repro.errors import DecodeError
from repro.monitor.records import PacketRecord, StatusRecord
from repro.monitor.storage import MetricsStore

PACKET_CSV_FIELDS = (
    "node", "seq", "ts", "dir", "src", "dst", "next_hop", "prev_hop",
    "ptype", "packet_id", "size", "rssi", "snr", "airtime_ms", "attempt",
)

STATUS_CSV_FIELDS = (
    "node", "seq", "ts", "uptime_s", "queue", "routes", "neighbors_n",
    "battery_v", "tx_frames", "tx_airtime_s", "retx", "drops", "duty",
    "originated", "delivered", "forwarded",
)


def export_packet_records_csv(store: MetricsStore, path: Union[str, Path]) -> int:
    """Write all packet records to a CSV file.

    Returns:
        Number of rows written.
    """
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=PACKET_CSV_FIELDS, extrasaction="ignore")
        writer.writeheader()
        for record in store.packet_records():
            row = record.to_json_dict()
            row.pop("kind", None)
            writer.writerow(row)
            count += 1
    return count


def export_status_records_csv(store: MetricsStore, path: Union[str, Path]) -> int:
    """Write all status records to a CSV file (neighbor lists omitted —
    use JSONL for those).

    Returns:
        Number of rows written.
    """
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=STATUS_CSV_FIELDS, extrasaction="ignore")
        writer.writeheader()
        for node in store.nodes():
            for record in store.status_records(node):
                row = record.to_json_dict()
                row.pop("kind", None)
                row.pop("neighbors", None)
                writer.writerow(row)
                count += 1
    return count


def export_jsonl(store: MetricsStore, path: Union[str, Path]) -> int:
    """Write every record (packet and status, with neighbor lists) as
    JSON lines.  Lossless up to the JSON field rounding.

    Returns:
        Number of lines written.
    """
    count = 0
    with open(path, "w") as handle:
        for record in store.packet_records():
            handle.write(json.dumps(record.to_json_dict(), separators=(",", ":")))
            handle.write("\n")
            count += 1
        for node in store.nodes():
            for record in store.status_records(node):
                handle.write(json.dumps(record.to_json_dict(), separators=(",", ":")))
                handle.write("\n")
                count += 1
    return count


def import_jsonl(path: Union[str, Path], store: Optional[MetricsStore] = None) -> MetricsStore:
    """Rebuild a metrics store from a JSONL export.

    Args:
        path: file written by :func:`export_jsonl`.
        store: existing store to append into (a new one by default).

    Raises:
        DecodeError: on a malformed line.
    """
    result = store if store is not None else MetricsStore()
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DecodeError(f"{path}:{line_number}: not JSON: {exc}") from exc
            kind = document.get("kind")
            if kind == "packet":
                result.add_packet_record(PacketRecord.from_json_dict(document))
            elif kind == "status":
                result.add_status_record(StatusRecord.from_json_dict(document))
            else:
                raise DecodeError(f"{path}:{line_number}: unknown record kind {kind!r}")
    return result
