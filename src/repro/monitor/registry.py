"""Per-network shard management for the multi-tenant monitoring server.

The production deployment shape is one monitoring server ingesting
telemetry from **many independent LoRa mesh networks** (a fleet of
smart-campus sites, say).  Records from different networks must never
mix: node ``7`` on campus A and node ``7`` on campus B are different
radios.  The :class:`NetworkRegistry` therefore gives every network its
own :class:`NetworkShard` — a private metrics store plus the per-node
dedup windows and ingest counters that go with it — created lazily on
the first batch from that network.

Scaling knobs
-------------

* ``max_networks`` bounds resident shards; when a new network would
  exceed the bound the least-recently-active *idle* shard is evicted
  (flushed, closed, forgotten).  A network that reports again later
  simply gets a fresh shard — telemetry is a rolling window anyway.
* Each shard counts its queued-but-unprocessed batches so the server
  can enforce a per-network ingest-queue quota: one noisy network
  saturating the global queue cannot starve the rest of the fleet.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.monitor.alerts import AlertEngine
from repro.monitor.fleet import TileAggregate
from repro.monitor.ingest import DEFAULT_NETWORK_ID, SeqWindow
from repro.monitor.rollup import IncrementalRollup
from repro.monitor.storage import MetricsStore

StoreFactory = Callable[[str], MetricsStore]

#: Bucket width of the per-shard traffic rollup feeding ``rollup-update``
#: stream events (matches the dashboard history default).
SHARD_ROLLUP_INTERVAL_S = 300.0


class NetworkShard:
    """One network's slice of the server: store, dedup state, counters.

    Beyond the ingest bookkeeping, a shard owns the incremental read
    path the push pipeline feeds at ingest time (all under the server
    lock): a :class:`~repro.monitor.fleet.TileAggregate` so fleet tiles
    are snapshot reads, an
    :class:`~repro.monitor.rollup.IncrementalRollup` whose dirty buckets
    become ``rollup-update`` stream events, and an
    :class:`~repro.monitor.alerts.AlertEngine` evaluated O(delta) via
    :meth:`~repro.monitor.alerts.AlertEngine.observe`.
    """

    def __init__(self, network_id: str, store: MetricsStore) -> None:
        self.network_id = network_id
        self.store = store
        #: Incremental fleet-tile aggregates (seeded when the store
        #: already holds records — the adopted-store path).
        self.tile = TileAggregate()
        self.tile.seed_from_store(store)
        #: Per-network traffic rollup fed record-by-record.
        self.rollup = IncrementalRollup(interval_s=SHARD_ROLLUP_INTERVAL_S)
        #: Per-network alert state driven by the O(delta) observe path.
        self.alerts = AlertEngine(store)
        #: Per-node dedup windows, private to this network — the same
        #: node address in two networks never shares a window.
        self.packet_windows: Dict[int, SeqWindow] = {}
        self.status_windows: Dict[int, SeqWindow] = {}
        #: Batches admitted to the server queue but not yet processed.
        self.queued_batches = 0
        #: Server clock of the last processed batch (None before any).
        self.last_batch_at: Optional[float] = None
        self.batches_ingested = 0
        self.records_ingested = 0
        self.dedup_hits = 0
        #: Batches that arrived as UDP telemetry datagrams (subset of
        #: ``batches_ingested``; maintained by the UDP transport).
        self.datagram_batches = 0

    def to_json_dict(self) -> Dict[str, object]:
        """Per-network ingest counters for the fleet/summary documents."""
        return {
            "network": self.network_id,
            "batches_ingested": self.batches_ingested,
            "records_ingested": self.records_ingested,
            "dedup_hits": self.dedup_hits,
            "datagram_batches": self.datagram_batches,
            "queued_batches": self.queued_batches,
            "last_batch_at": self.last_batch_at,
        }


class NetworkRegistry:
    """Lazy id -> shard mapping with LRU eviction of idle shards."""

    def __init__(
        self,
        store_factory: Optional[StoreFactory] = None,
        max_networks: Optional[int] = None,
    ) -> None:
        """Args:
            store_factory: builds a network's store on first contact;
                defaults to a fresh in-memory :class:`MetricsStore` per
                network.  Receives the network id, so a durable factory
                can derive one SQLite file per network.
            max_networks: bound on resident shards (None = unbounded).
        """
        if max_networks is not None and max_networks < 1:
            raise ConfigurationError(
                f"max_networks must be >= 1 or None, got {max_networks}"
            )
        self._store_factory: StoreFactory = (
            store_factory
            if store_factory is not None
            else (lambda network_id: MetricsStore())  # reprolint: allow[RL006] -- the registry owns shard stores; close() flushes and closes every one
        )
        self._max_networks = max_networks
        # Reentrant: get_or_create() -> get() and -> _evict_one() nest.
        self._lock = threading.RLock()
        #: Insertion/access-ordered: the first entry is the LRU candidate.
        #: Mutated from every handler thread (lazy creation + LRU
        #: move_to_end on reads), hence the lock.
        self._shards: "OrderedDict[str, NetworkShard]" = OrderedDict()  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    # -- lookup ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._shards)

    def __contains__(self, network_id: str) -> bool:
        with self._lock:
            return network_id in self._shards

    def __iter__(self) -> Iterator[NetworkShard]:
        with self._lock:
            return iter(list(self._shards.values()))

    def network_ids(self) -> List[str]:
        """Resident network ids, sorted for stable output."""
        with self._lock:
            return sorted(self._shards)

    def get(self, network_id: str) -> Optional[NetworkShard]:
        """The shard for ``network_id`` if resident (marks it active)."""
        with self._lock:
            shard = self._shards.get(network_id)
            if shard is not None:
                self._shards.move_to_end(network_id)
            return shard

    def get_or_create(self, network_id: str) -> NetworkShard:
        """The shard for ``network_id``, creating (and evicting) as needed.

        Atomic under the registry lock: two threads racing on the first
        batch from a network get the *same* shard, not two stores.
        """
        with self._lock:
            shard = self.get(network_id)
            if shard is not None:
                return shard
            if self._max_networks is not None:
                while len(self._shards) >= self._max_networks:
                    if not self._evict_one():
                        break  # every shard busy; let the fleet grow past the bound
            shard = NetworkShard(network_id, self._store_factory(network_id))
            self._shards[network_id] = shard
            return shard

    def adopt(self, network_id: str, store: MetricsStore) -> NetworkShard:
        """Register a shard around an externally constructed store.

        Used for the ``default`` network when a caller injects its own
        store into the server (the historical single-network API).
        """
        with self._lock:
            if network_id in self._shards:
                raise ConfigurationError(f"network {network_id!r} already registered")
            shard = NetworkShard(network_id, store)
            self._shards[network_id] = shard
            return shard

    # -- eviction -------------------------------------------------------------

    def _evict_one(self) -> bool:
        """Evict the least-recently-active idle shard; False if none is idle."""
        with self._lock:
            for network_id, shard in self._shards.items():
                if shard.queued_batches == 0:
                    self._close_shard(shard)
                    del self._shards[network_id]
                    self.evictions += 1
                    return True
            return False

    @staticmethod
    def _close_shard(shard: NetworkShard) -> None:
        flush = getattr(shard.store, "flush", None)
        if flush is not None:
            flush()
        close = getattr(shard.store, "close", None)
        if close is not None:
            close()

    def close(self) -> None:
        """Flush and close every shard's store (idempotent)."""
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            self._close_shard(shard)

    # -- convenience ----------------------------------------------------------

    @property
    def default(self) -> NetworkShard:
        """The implicit single-network shard (created on first use)."""
        return self.get_or_create(DEFAULT_NETWORK_ID)
