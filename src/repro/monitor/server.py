"""Monitoring server: ingestion, validation, deduplication, backpressure.

The server accepts batches in either wire format (JSON from the
out-of-band uplink, binary from the gateway bridge), validates them,
deduplicates records on (network, node, record-kind, seq) — the client
retries failed batches under new batch sequence numbers but stable
record sequence numbers — and writes accepted records into the
per-network :class:`~repro.monitor.storage.MetricsStore` (or the SQLite
store) through the store's batched write API.

Multi-tenancy
-------------

One server ingests telemetry from **many independent mesh networks**.
Every batch carries a ``network_id`` (implicitly ``"default"`` for
single-network clients) and is routed to that network's
:class:`~repro.monitor.registry.NetworkShard` — its own store, dedup
windows and counters, managed by a
:class:`~repro.monitor.registry.NetworkRegistry` with lazy shard
creation and LRU eviction of idle shards.  Single-network callers see
no difference: ``MonitorServer(store=...)`` makes the injected store
the ``default`` network's shard and the ``store`` attribute keeps
pointing at it.

Admission control
-----------------

Decoded batches pass through a bounded ingest queue so that overload
degrades gracefully instead of stalling the mesh-side uplinks:

* ``queue_capacity=None`` (default) — unbounded, every batch is
  processed inline; the historical synchronous behaviour.
* ``queue_capacity=N`` with ``autodrain=True`` — batches still process
  inline, but the queue accounting (depth, high-water mark) is live.
* ``queue_capacity=N`` with ``autodrain=False`` — batches are enqueued
  and processed later by :meth:`MonitorServer.drain`.  When the queue
  is full the configured :class:`BackpressurePolicy` decides: ``REJECT``
  refuses the new batch with a ``retry_after_s`` hint, ``DROP_OLDEST``
  evicts the oldest queued batch to admit the new one.
* ``network_queue_quota=N`` — per-network bound on queued batches, so
  one noisy network cannot starve the rest of the fleet: once a
  network's share of the queue reaches the quota, *its* next batch is
  rejected (or displaces its own oldest batch under ``DROP_OLDEST``)
  while other networks keep ingesting.

Observability ("monitor the monitor")
-------------------------------------

:class:`ServerSelfMetrics` counts everything the ingestion pipeline
does — batches/records ingested, dedup hits, decode failures, queue
depth high-water mark, rejected/dropped batches, quota rejections,
store flush count and latencies.  It is exposed as
``GET /api/v1/server`` by :mod:`repro.monitor.httpapi` and rendered in
the dashboard's ``[server]`` panel.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import warnings
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional, Union

from repro.errors import ConfigurationError, DecodeError
# The moved names are imported under private aliases so that plain
# attribute access on this module goes through the deprecation shim in
# __getattr__ below (a top-level public import would shadow it).
from repro.monitor.ingest import (
    DEFAULT_NETWORK_ID,
    BackpressurePolicy as _BackpressurePolicy,
    IngestResult as _IngestResult,
    SeqWindow,
    ServerSelfMetrics as _ServerSelfMetrics,
    ServerStats as _ServerStats,
)

if TYPE_CHECKING:  # public names, for annotations only
    from repro.monitor.alerts import Alert
    from repro.monitor.codec import Codec
    from repro.monitor.ingest import (
        BackpressurePolicy,
        IngestResult,
        ServerSelfMetrics,
        ServerStats,
    )
    from repro.monitor.transport.base import IngestTransport
from repro.monitor.fleet import materialized_tile
from repro.monitor.records import RecordBatch
from repro.monitor.registry import NetworkRegistry, NetworkShard, StoreFactory
from repro.monitor.rollup import bucket_document
from repro.monitor.storage import MetricsStore
from repro.monitor.stream.events import FLEET_TOPIC, network_topic
from repro.monitor.stream.hub import StreamHub

#: Kept under its historical (private) name for in-repo callers.
_SeqWindow = SeqWindow

#: Names that moved to :mod:`repro.monitor.ingest`; importing them from
#: here still works via :func:`__getattr__` but warns.
_MOVED_TO_INGEST = {
    "BackpressurePolicy": _BackpressurePolicy,
    "IngestResult": _IngestResult,
    "ServerStats": _ServerStats,
    "ServerSelfMetrics": _ServerSelfMetrics,
}


def __getattr__(name: str) -> Any:
    if name in _MOVED_TO_INGEST:
        warnings.warn(
            f"repro.monitor.server.{name} moved to repro.monitor.ingest; "
            f"import it from repro.monitor.ingest (or the repro.api facade)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _MOVED_TO_INGEST[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class MonitorServer:
    """Multi-tenant ingestion endpoint feeding per-network metrics stores."""

    def __init__(
        self,
        store: Optional[MetricsStore] = None,
        clock: Optional[Callable[[], float]] = None,
        queue_capacity: Optional[int] = None,
        backpressure: Union[BackpressurePolicy, str] = _BackpressurePolicy.REJECT,
        autodrain: bool = True,
        retry_after_s: float = 1.0,
        store_factory: Optional[StoreFactory] = None,
        max_networks: Optional[int] = None,
        network_queue_quota: Optional[int] = None,
        report_interval_s: float = 60.0,
        alert_sweep_interval_s: Optional[float] = None,
    ) -> None:
        """Create a server.

        Args:
            store: backing store for the implicit ``default`` network (a
                fresh one is created lazily when omitted).
            clock: returns "server time"; inside a simulation pass the
                simulator's ``now``.  Defaults to 0.0 (tests that do not
                care about liveness).
            queue_capacity: bound on the ingest queue (None = unbounded).
            backpressure: full-queue policy; see :class:`BackpressurePolicy`.
            autodrain: process each admitted batch inline (the historical
                synchronous behaviour).  ``False`` defers processing to
                :meth:`drain`, which is what makes the bound and the
                policy observable.
            retry_after_s: hint returned with REJECT refusals.
            store_factory: builds the store for each newly seen network
                (default: an in-memory :class:`MetricsStore` per network).
            max_networks: bound on resident network shards; the
                least-recently-active idle shard is evicted beyond it.
            network_queue_quota: per-network bound on queued batches
                (None = no per-network bound; only the global capacity
                applies).
            report_interval_s: expected client report interval, used
                when rendering the fleet tiles published on the stream.
            alert_sweep_interval_s: minimum spacing between full-rule
                alert sweeps (see :meth:`sweep_alerts`); defaults to
                ``report_interval_s``.
        """
        if report_interval_s <= 0:
            raise ConfigurationError(
                f"report_interval_s must be > 0, got {report_interval_s}"
            )
        if alert_sweep_interval_s is not None and alert_sweep_interval_s <= 0:
            raise ConfigurationError(
                f"alert_sweep_interval_s must be > 0 or None, got {alert_sweep_interval_s}"
            )
        if queue_capacity is not None and queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1 or None, got {queue_capacity}"
            )
        if network_queue_quota is not None and network_queue_quota < 1:
            raise ConfigurationError(
                f"network_queue_quota must be >= 1 or None, got {network_queue_quota}"
            )
        if retry_after_s <= 0:
            raise ConfigurationError(f"retry_after_s must be > 0, got {retry_after_s}")
        if isinstance(backpressure, str):
            backpressure = _BackpressurePolicy(backpressure)
        self.registry = NetworkRegistry(
            store_factory=store_factory, max_networks=max_networks
        )
        if store is not None:
            self.registry.adopt(DEFAULT_NETWORK_ID, store)
        self._clock = clock or (lambda: 0.0)
        # Reentrant: flush() -> _sync_flush_stats() both take it, and the
        # admission helpers are callable with the lock already held.
        self._lock = threading.RLock()
        self.stats = _ServerStats()  # guarded-by: _lock
        self.self_metrics = _ServerSelfMetrics()  # guarded-by: _lock
        self.queue_capacity = queue_capacity
        self.backpressure = backpressure
        self.autodrain = autodrain
        self.retry_after_s = retry_after_s
        self.network_queue_quota = network_queue_quota
        self.report_interval_s = report_interval_s
        self.alert_sweep_interval_s = (
            report_interval_s
            if alert_sweep_interval_s is None
            else alert_sweep_interval_s
        )
        #: Server clock of the last full-rule alert sweep (None before
        #: the cadence is anchored by the first maybe_sweep_alerts call).
        self._last_alert_sweep_at: Optional[float] = None  # guarded-by: _lock
        #: Full-rule sweeps run over the server's lifetime.
        self.alert_sweeps = 0  # guarded-by: _lock
        self._queue: Deque[RecordBatch] = deque()  # guarded-by: _lock
        self._transports: List[IngestTransport] = []  # guarded-by: _lock
        #: Push-pipeline fan-out.  The ingest path publishes while
        #: holding the server lock (``MonitorServer._lock`` ->
        #: ``StreamHub._lock`` is the sanctioned order); the hub is a
        #: leaf that never calls back into the server.
        self.stream = StreamHub(clock=self._clock)
        #: Cached assembled fleet-overview document, keyed by ingest
        #: progress + rendering parameters (see fleet.fleet_overview).
        self._fleet_cache: Optional[Any] = None  # guarded-by: _lock

    # -- tenancy --------------------------------------------------------------

    @property
    def store(self) -> MetricsStore:
        """The ``default`` network's store (the historical attribute)."""
        return self.registry.default.store

    def networks(self) -> List[str]:
        """Ids of every resident network, sorted."""
        return self.registry.network_ids()

    def shard_for(self, network_id: str) -> Optional[NetworkShard]:
        """The shard for ``network_id``, or None if never seen/evicted."""
        return self.registry.get(network_id)

    def store_for(self, network_id: str) -> Optional[MetricsStore]:
        """The metrics store for ``network_id``, or None if not resident."""
        shard = self.registry.get(network_id)
        return shard.store if shard is not None else None

    # -- fleet snapshot cache -------------------------------------------------

    def fleet_version(self) -> tuple:
        """Ingest-progress fingerprint the fleet-overview cache is keyed on.

        Any accepted batch, eviction, or change in resident networks
        changes the fingerprint, invalidating the cached overview.
        """
        with self._lock:
            return (
                self.self_metrics.batches_ingested,
                self.registry.evictions,
                len(self.registry),
            )

    def fleet_cache_get(self, key: tuple) -> Optional[Dict[str, Any]]:
        """The cached fleet-overview document for ``key``, if current."""
        with self._lock:
            cached = self._fleet_cache
            if cached is not None and cached[0] == key:
                return cached[1]  # type: ignore[no-any-return]
            return None

    def fleet_cache_put(self, key: tuple, document: Dict[str, Any]) -> None:
        """Remember the assembled overview for ``key`` (latest wins)."""
        with self._lock:
            self._fleet_cache = (key, document)

    def materialize_tile(
        self,
        shard: NetworkShard,
        now: float,
        report_interval_s: float = 60.0,
    ) -> Dict[str, Any]:
        """Render ``shard``'s fleet tile under the server lock.

        The tile aggregates are plain dicts the ingest path mutates
        under the server lock, so handler threads must take the same
        lock to iterate them (RL100) — otherwise a concurrent ingest
        can resize a dict mid-iteration.  The ingest path calls
        :func:`repro.monitor.fleet.materialized_tile` directly because
        it already holds the lock.
        """
        with self._lock:
            return materialized_tile(shard, now, report_interval_s=report_interval_s)

    def materialize_tiles(
        self, now: float, report_interval_s: float = 60.0
    ) -> List[Dict[str, Any]]:
        """Every resident network's tile, sorted by id, one lock hold."""
        with self._lock:
            shards = sorted(self.registry, key=lambda shard: shard.network_id)
            return [
                materialized_tile(shard, now, report_interval_s=report_interval_s)
                for shard in shards
            ]

    # -- admission -----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Batches admitted but not yet processed."""
        with self._lock:
            return len(self._queue)

    def queue_depth_for(self, network_id: str) -> int:
        """Queued batches belonging to ``network_id``."""
        shard = self.registry.get(network_id)
        return shard.queued_batches if shard is not None else 0

    def ingest_json(self, raw: bytes, network_id: Optional[str] = None) -> IngestResult:
        """Ingest an out-of-band JSON batch.

        Args:
            raw: wire bytes.
            network_id: when given (the network-scoped HTTP ingest
                route), the batch must belong to this network: an
                unstamped batch is stamped with it, a batch stamped with
                a *different* network is refused.
        """
        with self._lock:
            self.stats.bytes_received += len(raw)
        try:
            # Decode outside the lock: parsing is pure CPU work on
            # thread-local bytes.
            batch = RecordBatch.from_json_bytes(raw)
        except DecodeError as exc:
            with self._lock:
                self.stats.batches_rejected += 1
                self.self_metrics.decode_failures += 1
            return _IngestResult(ok=False, error=str(exc))
        if network_id is not None:
            if batch.network_id not in (DEFAULT_NETWORK_ID, network_id):
                with self._lock:
                    self.stats.batches_rejected += 1
                    self.self_metrics.decode_failures += 1
                return _IngestResult(
                    ok=False,
                    error=(
                        f"batch is stamped for network {batch.network_id!r} "
                        f"but was posted to network {network_id!r}"
                    ),
                )
            if batch.network_id != network_id:
                batch = dataclasses.replace(batch, network_id=network_id)
        return self.submit(batch)

    def ingest_binary(self, raw: bytes, network_id: Optional[str] = None) -> IngestResult:
        """Ingest an in-band binary batch (via the gateway bridge).

        The compact binary format does not spend airtime on a network
        id; the bridge that decodes it knows which network its gateway
        belongs to and passes ``network_id`` here.
        """
        with self._lock:
            self.stats.bytes_received += len(raw)
        try:
            batch = RecordBatch.from_binary(raw)
        except DecodeError as exc:
            with self._lock:
                self.stats.batches_rejected += 1
                self.self_metrics.decode_failures += 1
            return _IngestResult(ok=False, error=str(exc))
        if network_id is not None and batch.network_id != network_id:
            batch = dataclasses.replace(batch, network_id=network_id)
        return self.submit(batch)

    def ingest_encoded(
        self,
        raw: bytes,
        codec: Union["Codec", str],
        network_id: Optional[str] = None,
    ) -> IngestResult:
        """Ingest wire bytes in any registered codec.

        The ``json`` codec delegates to :meth:`ingest_json`, so the
        legacy HTTP+JSON path runs the exact historical code.  Other
        codecs share its stamping rules: an unstamped batch posted to a
        network-scoped route is stamped with that network, a batch
        stamped for a *different* network is refused.
        """
        from repro.monitor.codec import resolve_codec

        resolved = resolve_codec(codec)
        if resolved.name == "json":
            return self.ingest_json(raw, network_id=network_id)
        with self._lock:
            self.stats.bytes_received += len(raw)
        try:
            batch = resolved.decode(raw)
        except DecodeError as exc:
            with self._lock:
                self.stats.batches_rejected += 1
                self.self_metrics.decode_failures += 1
            return _IngestResult(ok=False, error=str(exc))
        if network_id is not None:
            if batch.network_id not in (DEFAULT_NETWORK_ID, network_id):
                with self._lock:
                    self.stats.batches_rejected += 1
                    self.self_metrics.decode_failures += 1
                return _IngestResult(
                    ok=False,
                    error=(
                        f"batch is stamped for network {batch.network_id!r} "
                        f"but was posted to network {network_id!r}"
                    ),
                )
            if batch.network_id != network_id:
                batch = dataclasses.replace(batch, network_id=network_id)
        return self.submit(batch)

    def ingest(self, batch: RecordBatch) -> IngestResult:
        """Ingest an already decoded batch (tests, local clients)."""
        return self.submit(batch)

    # -- transports ----------------------------------------------------------

    def attach_transport(self, transport: "IngestTransport") -> "IngestTransport":
        """Register a transport so its counters join the self-metrics.

        The server does not start the transport (the serve CLI owns the
        lifecycle) but :meth:`close` stops every attached one.
        """
        with self._lock:
            self._transports.append(transport)
        return transport

    @property
    def transports(self) -> List["IngestTransport"]:
        """The attached transports (read-only view)."""
        with self._lock:
            return list(self._transports)

    def note_datagram_batch(self, network_id: str) -> None:
        """Count one datagram-delivered batch against ``network_id``.

        Transports must not reach into shard counters themselves — shard
        bookkeeping is guarded by the server lock.
        """
        with self._lock:
            shard = self.registry.get(network_id)
            if shard is not None:
                shard.datagram_batches += 1

    def submit(self, batch: RecordBatch) -> IngestResult:
        """Admit ``batch`` through the bounded queue, then maybe process it.

        Admission (queue bound, quota, enqueue) happens atomically under
        the server lock; processing happens in :meth:`drain`, which
        re-locks per batch.  Under concurrent submitters an autodrain
        call may find its batch already processed by a sibling thread's
        drain — the returned result then reports the admission, not the
        (equivalent) processing outcome.
        """
        with self._lock:
            shard = self.registry.get_or_create(batch.network_id)
            if (
                self.queue_capacity is not None
                and len(self._queue) >= self.queue_capacity
            ):
                if self.backpressure is _BackpressurePolicy.DROP_OLDEST:
                    evicted = self._queue.popleft()
                    self._uncount_queued(evicted)
                    self.self_metrics.batches_dropped += 1
                else:
                    self.stats.batches_rejected += 1
                    self.self_metrics.batches_rejected += 1
                    return _IngestResult(
                        ok=False,
                        error="ingest queue full",
                        retry_after_s=self.retry_after_s,
                    )
            elif (
                self.network_queue_quota is not None
                and shard.queued_batches >= self.network_queue_quota
            ):
                # The global queue has room but this network used up its
                # share: apply the policy to this network only.
                if self.backpressure is _BackpressurePolicy.DROP_OLDEST:
                    self._drop_oldest_of(batch.network_id)
                    self.self_metrics.batches_dropped += 1
                else:
                    self.stats.batches_rejected += 1
                    self.self_metrics.batches_rejected += 1
                    self.self_metrics.quota_rejections += 1
                    return _IngestResult(
                        ok=False,
                        error=f"ingest queue quota exhausted for network {batch.network_id!r}",
                        retry_after_s=self.retry_after_s,
                    )
            self._queue.append(batch)
            shard.queued_batches += 1
            depth = len(self._queue)
            if depth > self.self_metrics.queue_high_water:
                self.self_metrics.queue_high_water = depth
        if self.autodrain:
            results = self.drain()
            if results:
                return results[-1]
        return _IngestResult(ok=True, queued=True)

    def _uncount_queued(self, batch: RecordBatch) -> None:
        """Caller holds ``self._lock``."""
        shard = self.registry.get(batch.network_id)
        if shard is not None and shard.queued_batches > 0:
            shard.queued_batches -= 1

    def _drop_oldest_of(self, network_id: str) -> None:
        """Evict the oldest queued batch belonging to ``network_id``."""
        with self._lock:
            for index, queued in enumerate(self._queue):
                if queued.network_id == network_id:
                    del self._queue[index]
                    self._uncount_queued(queued)
                    return

    def drain(self, max_batches: Optional[int] = None) -> List[IngestResult]:
        """Process up to ``max_batches`` queued batches (all by default)."""
        results: List[IngestResult] = []
        while True:
            with self._lock:
                if not self._queue:
                    break
                if max_batches is not None and len(results) >= max_batches:
                    break
                batch = self._queue.popleft()
                self._uncount_queued(batch)
            results.append(self._ingest(batch))
        if results:
            # Opportunistic full-rule sweep riding the ingest cadence
            # (at most once per alert_sweep_interval_s): catches the
            # conditions the O(delta) observe path cannot judge — a
            # *silent* node in an otherwise active fleet, windowed
            # cross-node rules like low PDR.
            self.maybe_sweep_alerts()
        return results

    # -- alert sweeping -------------------------------------------------------

    def sweep_alerts(self, now: Optional[float] = None) -> List["Alert"]:
        """Full-rule sweep over every shard's alert engine; returns raised.

        The ingest path's :meth:`AlertEngine.observe` judges only the
        node a batch touched, so rules that fire on the *absence* of
        deltas (silent-node raising) or on cross-node windows (low PDR)
        need this periodic sweep.  Raised and cleared alerts are
        published onto the network's stream topic exactly like the
        observe path's, so SSE subscribers see them live.  Wired in two
        places: :meth:`drain` calls :meth:`maybe_sweep_alerts` on the
        ingest cadence, and the HTTP tier runs a timer so a fleet that
        goes entirely silent still raises; library users driving their
        own clock can call it directly.
        """
        raised_all: List["Alert"] = []
        with self._lock:
            if now is None:
                now = self._clock()
            self._last_alert_sweep_at = now
            self.alert_sweeps += 1
            for shard in self.registry:
                raised, cleared = shard.alerts.evaluate_changes(now)
                if not raised and not cleared:
                    continue
                topic = network_topic(shard.network_id)
                for alert in raised:
                    data = alert.to_json_dict()
                    data["network"] = shard.network_id
                    self.stream.publish(topic, "alert-raised", data, at=now)
                for alert in cleared:
                    data = alert.to_json_dict()
                    data["network"] = shard.network_id
                    data["cleared_at"] = now
                    self.stream.publish(topic, "alert-cleared", data, at=now)
                raised_all.extend(raised)
        return raised_all

    def maybe_sweep_alerts(self, now: Optional[float] = None) -> List["Alert"]:
        """Run :meth:`sweep_alerts` if the sweep interval elapsed.

        The first call only anchors the cadence (nothing worth sweeping
        exists before one interval of history).  The elapsed check and
        the timestamp claim happen atomically under the server lock, so
        concurrent callers (handler threads, the HTTP sweep timer)
        cannot double-sweep the same slot.
        """
        with self._lock:
            if now is None:
                now = self._clock()
            last = self._last_alert_sweep_at
            if last is None:
                self._last_alert_sweep_at = now
                return []
            if now - last < self.alert_sweep_interval_s:
                return []
            self._last_alert_sweep_at = now  # claim the slot
        return self.sweep_alerts(now)

    # -- processing ----------------------------------------------------------

    def _ingest(self, batch: RecordBatch) -> IngestResult:
        with self._lock:
            shard = self.registry.get_or_create(batch.network_id)
            packet_window = shard.packet_windows.setdefault(batch.node, SeqWindow())
            status_window = shard.status_windows.setdefault(batch.node, SeqWindow())
            accepted_packets = []
            accepted_status = []
            duplicates = 0
            for record in batch.packet_records:
                if record.node != batch.node:
                    # A client may only report its own observations.
                    self.self_metrics.foreign_records_rejected += 1
                    continue
                if packet_window.check_and_add(record.seq):
                    accepted_packets.append(record)
                else:
                    duplicates += 1
            for record in batch.status_records:
                if record.node != batch.node:
                    self.self_metrics.foreign_records_rejected += 1
                    continue
                if status_window.check_and_add(record.seq):
                    accepted_status.append(record)
                else:
                    duplicates += 1
            store = shard.store
            if accepted_packets:
                add_packets = getattr(store, "add_packet_records", None)
                if add_packets is not None:
                    add_packets(accepted_packets)
                else:  # stores predating the batch API
                    for record in accepted_packets:
                        store.add_packet_record(record)
            if accepted_status:
                add_status = getattr(store, "add_status_records", None)
                if add_status is not None:
                    add_status(accepted_status)
                else:
                    for record in accepted_status:
                        store.add_status_record(record)
            now = self._clock()
            store.note_batch(batch.node, now, batch.dropped_records)
            accepted = len(accepted_packets) + len(accepted_status)
            self.stats.batches_ok += 1
            self.stats.records_accepted += accepted
            self.stats.duplicates += duplicates
            self.self_metrics.batches_ingested += 1
            self.self_metrics.packet_records_ingested += len(accepted_packets)
            self.self_metrics.status_records_ingested += len(accepted_status)
            self.self_metrics.dedup_hits += duplicates
            shard.batches_ingested += 1
            shard.records_ingested += accepted
            shard.dedup_hits += duplicates
            shard.last_batch_at = now
            # Incremental read path + push pipeline: feed the shard's
            # tile/rollup/alert aggregates and publish the deltas.  All
            # of it is in-memory bookkeeping; publishing under the
            # server lock keeps event order consistent with the
            # counters the events report (server -> hub is the
            # sanctioned lock order, and the hub is a leaf).
            shard.tile.observe_batch(batch.node, now)
            for record in accepted_packets:
                shard.rollup.add(record.timestamp, float(record.size_bytes))
                shard.tile.observe_packet(record)
            for record in accepted_status:
                shard.tile.observe_status(record)
            topic = network_topic(batch.network_id)
            self.stream.publish(
                topic,
                "ingest-delta",
                {
                    "network": batch.network_id,
                    "node": batch.node,
                    "accepted_packets": len(accepted_packets),
                    "accepted_status": len(accepted_status),
                    "duplicates": duplicates,
                    "batches_ingested": shard.batches_ingested,
                    "records_ingested": shard.records_ingested,
                },
                at=now,
            )
            for bucket in shard.rollup.drain_updates():
                data = bucket_document(bucket, shard.rollup.interval_s)
                data["network"] = batch.network_id
                self.stream.publish(topic, "rollup-update", data, at=now)
            raised, cleared = shard.alerts.observe(
                now, (shard.tile.node_delta(batch.node),)
            )
            for alert in raised:
                data = alert.to_json_dict()
                data["network"] = batch.network_id
                self.stream.publish(topic, "alert-raised", data, at=now)
            for alert in cleared:
                data = alert.to_json_dict()
                data["network"] = batch.network_id
                data["cleared_at"] = now
                self.stream.publish(topic, "alert-cleared", data, at=now)
            tile = materialized_tile(
                shard, now, report_interval_s=self.report_interval_s
            )
            self.stream.publish(topic, "fleet-tile", tile, at=now)
            self.stream.publish(FLEET_TOPIC, "fleet-tile", tile, at=now)
            result = _IngestResult(
                ok=True,
                accepted_packets=len(accepted_packets),
                accepted_status=len(accepted_status),
                duplicates=duplicates,
            )
        # The store flush can hit sqlite; keep it outside the critical
        # section (RL101) — stores serialise their own writes.
        self._flush_store(store)
        return result

    def _flush_store(self, store: MetricsStore) -> None:
        """Let a durable store decide whether a flush is due."""
        maybe_flush = getattr(store, "maybe_flush", None)
        if maybe_flush is not None:
            maybe_flush()
            self._sync_flush_stats()
            return
        # Stores without batching semantics but with commit() (historical
        # third-party drop-ins): flush once per batch as before.
        commit = getattr(store, "commit", None)
        if commit is not None:
            commit()

    def _sync_flush_stats(self) -> None:
        """Mirror the stores' flush counters into the self-metrics.

        The stores are the source of truth: their size/age thresholds
        can fire inside ``add_*_records`` calls, not only when the
        server asks, so the self-metrics aggregate rather than
        re-measure.  With several durable shards the counters sum and
        the latencies take the worst case.
        """
        flushes = 0
        last = 0.0
        worst = 0.0
        total = 0.0
        seen = False
        for shard in self.registry:
            stats = getattr(shard.store, "flush_stats", None)
            if stats is None:
                continue
            seen = True
            flushes += stats.flushes
            last = stats.last_latency_s
            worst = max(worst, stats.max_latency_s)
            total += stats.total_latency_s
        if not seen:
            return
        with self._lock:
            self.self_metrics.store_flushes = flushes
            self.self_metrics.flush_latency_last_s = last
            self.self_metrics.flush_latency_max_s = worst
            self.self_metrics.flush_latency_total_s = total

    def flush(self) -> None:
        """Force any buffered store writes out (shutdown, test barriers)."""
        for shard in self.registry:
            flush = getattr(shard.store, "flush", None)
            if flush is None:
                continue
            started = time.perf_counter()
            flushed = flush()
            if getattr(shard.store, "flush_stats", None) is not None:
                self._sync_flush_stats()
            elif flushed:
                with self._lock:
                    self.self_metrics.note_flush(time.perf_counter() - started)

    def close(self) -> None:
        """Orderly shutdown: drain queued batches, flush, close every shard.

        The server owns the stores it creates, so closing the server
        closes them; store closes are idempotent, so an injected store
        may safely be closed again by its creator.
        """
        with self._lock:
            transports = list(self._transports)
        # Stop transports *outside* the lock: a receiver thread may be
        # blocked in submit() waiting for it, and stop() joins that
        # thread (RL101's deadlock shape).
        for transport in transports:
            transport.stop()
        self.drain()
        self.flush()
        # Close the hub after the final drain so the last deltas reach
        # subscribers, and before the stores go away.
        self.stream.close()
        self.registry.close()

    def __enter__(self) -> "MonitorServer":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- documents -----------------------------------------------------------

    def self_metrics_document(self) -> Dict[str, Any]:
        """The ``GET /api/v1/server`` body: self-metrics + queue + wire stats."""
        with self._lock:
            document = self.self_metrics.to_json_dict()
            transports = list(self._transports)
            alerts_emitted = 0
            alerts_history_len = 0
            alerts_active = 0
            for shard in self.registry:
                alerts_emitted += shard.alerts.alerts_emitted
                alerts_history_len += shard.alerts.history_len
                alerts_active += len(shard.alerts.active())
            document.update(
                {
                    "queue_depth": len(self._queue),
                    "queue_capacity": self.queue_capacity,
                    "backpressure": self.backpressure.value,
                    "autodrain": self.autodrain,
                    "bytes_received": self.stats.bytes_received,
                    "networks": len(self.registry),
                    "network_queue_quota": self.network_queue_quota,
                    "network_evictions": self.registry.evictions,
                    # Shard alert engines (the O(delta) observe path);
                    # history is a bounded ring, so emitted >= history.
                    "alerts_emitted": alerts_emitted,
                    "alerts_history_len": alerts_history_len,
                    "alerts_active": alerts_active,
                    "alert_sweeps": self.alert_sweeps,
                    "alert_sweep_interval_s": self.alert_sweep_interval_s,
                }
            )
        # Transports lock themselves; collecting their documents outside
        # the server lock keeps the lock order server-independent.
        document["transports"] = {
            transport.name: transport.stats_document() for transport in transports
        }
        # Same shape for the hub: it locks itself, and collecting the
        # stream document outside the server lock keeps the sanctioned
        # server -> hub order one-directional.
        document["stream"] = self.stream.stats_document()
        store_stats = getattr(self.store, "flush_stats", None)
        if store_stats is not None:
            document["store"] = {
                "flushes": store_stats.flushes,
                "records_flushed": store_stats.records_flushed,
                "flush_latency_last_ms": store_stats.last_latency_s * 1000.0,
                "flush_latency_max_ms": store_stats.max_latency_s * 1000.0,
            }
        return document

    def network_document(self, network_id: str) -> Optional[Dict[str, Any]]:
        """Per-network ingest counters, or None for an unknown network."""
        with self._lock:
            shard = self.registry.get(network_id)
            if shard is None:
                return None
            document = shard.to_json_dict()
            document["queued_batches"] = shard.queued_batches
            return document
