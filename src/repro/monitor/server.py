"""Monitoring server: ingestion, validation and deduplication.

The server accepts batches in either wire format (JSON from the
out-of-band uplink, binary from the gateway bridge), validates them,
deduplicates records on (node, record-kind, seq) — the client retries
failed batches under new batch sequence numbers but stable record
sequence numbers — and writes accepted records into the
:class:`~repro.monitor.storage.MetricsStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.errors import DecodeError
from repro.monitor.records import RecordBatch
from repro.monitor.storage import MetricsStore


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one batch ingestion."""

    ok: bool
    accepted_packets: int = 0
    accepted_status: int = 0
    duplicates: int = 0
    error: Optional[str] = None


@dataclass
class ServerStats:
    """Server-side counters."""

    batches_ok: int = 0
    batches_rejected: int = 0
    records_accepted: int = 0
    duplicates: int = 0
    bytes_received: int = 0


class _SeqWindow:
    """Bounded per-node set of recently seen record sequence numbers.

    Sequence numbers are monotonically increasing per client, so keeping
    the recent window plus a low-water mark gives exact deduplication with
    bounded memory: anything at or below the mark has been seen.
    """

    def __init__(self, capacity: int = 65536) -> None:
        self._capacity = capacity
        self._seen: Set[int] = set()
        self._low_water = -1

    def check_and_add(self, seq: int) -> bool:
        """Record ``seq``; return True when it is new."""
        if seq <= self._low_water or seq in self._seen:
            return False
        self._seen.add(seq)
        if len(self._seen) > self._capacity:
            # Advance the low-water mark past the densest prefix.
            ordered = sorted(self._seen)
            cut = len(ordered) // 2
            self._low_water = ordered[cut - 1]
            self._seen = set(ordered[cut:])
        return True


class MonitorServer:
    """Ingestion endpoint feeding the metrics store."""

    def __init__(self, store: Optional[MetricsStore] = None, clock: Optional[Callable[[], float]] = None) -> None:
        """Create a server.

        Args:
            store: backing store (a fresh one is created when omitted).
            clock: returns "server time"; inside a simulation pass the
                simulator's ``now``.  Defaults to 0.0 (tests that do not
                care about liveness).
        """
        self.store = store if store is not None else MetricsStore()
        self._clock = clock or (lambda: 0.0)
        self.stats = ServerStats()
        self._packet_windows: Dict[int, _SeqWindow] = {}
        self._status_windows: Dict[int, _SeqWindow] = {}

    def ingest_json(self, raw: bytes) -> IngestResult:
        """Ingest an out-of-band JSON batch."""
        self.stats.bytes_received += len(raw)
        try:
            batch = RecordBatch.from_json_bytes(raw)
        except DecodeError as exc:
            self.stats.batches_rejected += 1
            return IngestResult(ok=False, error=str(exc))
        return self._ingest(batch)

    def ingest_binary(self, raw: bytes) -> IngestResult:
        """Ingest an in-band binary batch (via the gateway bridge)."""
        self.stats.bytes_received += len(raw)
        try:
            batch = RecordBatch.from_binary(raw)
        except DecodeError as exc:
            self.stats.batches_rejected += 1
            return IngestResult(ok=False, error=str(exc))
        return self._ingest(batch)

    def ingest(self, batch: RecordBatch) -> IngestResult:
        """Ingest an already decoded batch (tests, local clients)."""
        return self._ingest(batch)

    def _ingest(self, batch: RecordBatch) -> IngestResult:
        packet_window = self._packet_windows.setdefault(batch.node, _SeqWindow())
        status_window = self._status_windows.setdefault(batch.node, _SeqWindow())
        accepted_packets = 0
        accepted_status = 0
        duplicates = 0
        for record in batch.packet_records:
            if record.node != batch.node:
                # A client may only report its own observations.
                continue
            if packet_window.check_and_add(record.seq):
                self.store.add_packet_record(record)
                accepted_packets += 1
            else:
                duplicates += 1
        for record in batch.status_records:
            if record.node != batch.node:
                continue
            if status_window.check_and_add(record.seq):
                self.store.add_status_record(record)
                accepted_status += 1
            else:
                duplicates += 1
        self.store.note_batch(batch.node, self._clock(), batch.dropped_records)
        # Durable stores (SQLite) expose commit(); flush once per batch.
        commit = getattr(self.store, "commit", None)
        if commit is not None:
            commit()
        self.stats.batches_ok += 1
        self.stats.records_accepted += accepted_packets + accepted_status
        self.stats.duplicates += duplicates
        return IngestResult(
            ok=True,
            accepted_packets=accepted_packets,
            accepted_status=accepted_status,
            duplicates=duplicates,
        )
