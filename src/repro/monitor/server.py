"""Monitoring server: ingestion, validation, deduplication, backpressure.

The server accepts batches in either wire format (JSON from the
out-of-band uplink, binary from the gateway bridge), validates them,
deduplicates records on (node, record-kind, seq) — the client retries
failed batches under new batch sequence numbers but stable record
sequence numbers — and writes accepted records into the
:class:`~repro.monitor.storage.MetricsStore` (or the SQLite store)
through the store's batched write API.

Admission control
-----------------

Decoded batches pass through a bounded ingest queue so that overload
degrades gracefully instead of stalling the mesh-side uplinks:

* ``queue_capacity=None`` (default) — unbounded, every batch is
  processed inline; the historical synchronous behaviour.
* ``queue_capacity=N`` with ``autodrain=True`` — batches still process
  inline, but the queue accounting (depth, high-water mark) is live.
* ``queue_capacity=N`` with ``autodrain=False`` — batches are enqueued
  and processed later by :meth:`MonitorServer.drain` (a worker loop, a
  simulator event, or a test).  When the queue is full the configured
  :class:`BackpressurePolicy` decides: ``REJECT`` refuses the new batch
  with a ``retry_after_s`` hint (the client's at-least-once retry
  redelivers it), ``DROP_OLDEST`` evicts the oldest queued batch to
  admit the new one (freshest-data-wins, as a live dashboard prefers).

Observability ("monitor the monitor")
-------------------------------------

:class:`ServerSelfMetrics` counts everything the ingestion pipeline
does — batches/records ingested, dedup hits, decode failures, queue
depth high-water mark, rejected/dropped batches, store flush count and
latencies.  It is exposed as ``GET /api/server`` by
:mod:`repro.monitor.httpapi` and rendered in the dashboard's
``[server]`` panel.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Deque, Dict, List, Optional, Set

from repro.errors import ConfigurationError, DecodeError
from repro.monitor.records import RecordBatch
from repro.monitor.storage import MetricsStore


class BackpressurePolicy(Enum):
    """What a full ingest queue does with the next batch."""

    #: Refuse the batch; the result carries ``retry_after_s`` so the
    #: client backs off and retries (at-least-once uplinks redeliver).
    REJECT = "reject"
    #: Evict the oldest queued batch to admit the new one.  Bounded
    #: staleness for a live dashboard; the evicted batch is lost unless
    #: the client retries it.
    DROP_OLDEST = "drop_oldest"


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one batch ingestion."""

    ok: bool
    accepted_packets: int = 0
    accepted_status: int = 0
    duplicates: int = 0
    error: Optional[str] = None
    #: True when the batch was admitted to the ingest queue but not yet
    #: processed (``autodrain=False``); counts arrive after drain().
    queued: bool = False
    #: Backpressure hint: seconds the client should wait before retrying.
    retry_after_s: Optional[float] = None


@dataclass
class ServerStats:
    """Server-side counters (historical shape, kept for compatibility)."""

    batches_ok: int = 0
    batches_rejected: int = 0
    records_accepted: int = 0
    duplicates: int = 0
    bytes_received: int = 0


@dataclass
class ServerSelfMetrics:
    """Ingestion-pipeline self-metrics ("monitor the monitor").

    Everything needed to answer "is the monitoring server itself
    healthy?" — exposed over ``GET /api/server`` and on the dashboard.
    """

    batches_ingested: int = 0
    packet_records_ingested: int = 0
    status_records_ingested: int = 0
    dedup_hits: int = 0
    foreign_records_rejected: int = 0
    decode_failures: int = 0
    batches_rejected: int = 0          # backpressure refusals (REJECT)
    batches_dropped: int = 0           # queue evictions (DROP_OLDEST)
    queue_high_water: int = 0
    store_flushes: int = 0
    flush_latency_last_s: float = 0.0
    flush_latency_max_s: float = 0.0
    flush_latency_total_s: float = 0.0

    def note_flush(self, latency_s: float) -> None:
        self.store_flushes += 1
        self.flush_latency_last_s = latency_s
        self.flush_latency_max_s = max(self.flush_latency_max_s, latency_s)
        self.flush_latency_total_s += latency_s

    @property
    def records_ingested(self) -> int:
        return self.packet_records_ingested + self.status_records_ingested

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "batches_ingested": self.batches_ingested,
            "records_ingested": self.records_ingested,
            "packet_records_ingested": self.packet_records_ingested,
            "status_records_ingested": self.status_records_ingested,
            "dedup_hits": self.dedup_hits,
            "foreign_records_rejected": self.foreign_records_rejected,
            "decode_failures": self.decode_failures,
            "batches_rejected": self.batches_rejected,
            "batches_dropped": self.batches_dropped,
            "queue_high_water": self.queue_high_water,
            "store_flushes": self.store_flushes,
            "flush_latency_last_ms": self.flush_latency_last_s * 1000.0,
            "flush_latency_max_ms": self.flush_latency_max_s * 1000.0,
            "flush_latency_total_ms": self.flush_latency_total_s * 1000.0,
        }


class _SeqWindow:
    """Bounded per-node set of recently seen record sequence numbers.

    Sequence numbers are monotonically increasing per client, so keeping
    the recent window plus a low-water mark gives exact deduplication with
    bounded memory: anything at or below the mark has been seen.
    """

    def __init__(self, capacity: int = 65536) -> None:
        self._capacity = capacity
        self._seen: Set[int] = set()
        self._low_water = -1

    def check_and_add(self, seq: int) -> bool:
        """Record ``seq``; return True when it is new."""
        if seq <= self._low_water or seq in self._seen:
            return False
        self._seen.add(seq)
        if len(self._seen) > self._capacity:
            # Advance the low-water mark past the densest prefix.
            ordered = sorted(self._seen)
            cut = len(ordered) // 2
            self._low_water = ordered[cut - 1]
            self._seen = set(ordered[cut:])
        return True


class MonitorServer:
    """Ingestion endpoint feeding the metrics store."""

    def __init__(
        self,
        store: Optional[MetricsStore] = None,
        clock: Optional[Callable[[], float]] = None,
        queue_capacity: Optional[int] = None,
        backpressure: BackpressurePolicy = BackpressurePolicy.REJECT,
        autodrain: bool = True,
        retry_after_s: float = 1.0,
    ) -> None:
        """Create a server.

        Args:
            store: backing store (a fresh one is created when omitted).
            clock: returns "server time"; inside a simulation pass the
                simulator's ``now``.  Defaults to 0.0 (tests that do not
                care about liveness).
            queue_capacity: bound on the ingest queue (None = unbounded).
            backpressure: full-queue policy; see :class:`BackpressurePolicy`.
            autodrain: process each admitted batch inline (the historical
                synchronous behaviour).  ``False`` defers processing to
                :meth:`drain`, which is what makes the bound and the
                policy observable.
            retry_after_s: hint returned with REJECT refusals.
        """
        if queue_capacity is not None and queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1 or None, got {queue_capacity}"
            )
        if retry_after_s <= 0:
            raise ConfigurationError(f"retry_after_s must be > 0, got {retry_after_s}")
        if isinstance(backpressure, str):
            backpressure = BackpressurePolicy(backpressure)
        self.store = store if store is not None else MetricsStore()
        self._clock = clock or (lambda: 0.0)
        self.stats = ServerStats()
        self.self_metrics = ServerSelfMetrics()
        self.queue_capacity = queue_capacity
        self.backpressure = backpressure
        self.autodrain = autodrain
        self.retry_after_s = retry_after_s
        self._queue: Deque[RecordBatch] = deque()
        self._packet_windows: Dict[int, _SeqWindow] = {}
        self._status_windows: Dict[int, _SeqWindow] = {}

    # -- admission -----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Batches admitted but not yet processed."""
        return len(self._queue)

    def ingest_json(self, raw: bytes) -> IngestResult:
        """Ingest an out-of-band JSON batch."""
        self.stats.bytes_received += len(raw)
        try:
            batch = RecordBatch.from_json_bytes(raw)
        except DecodeError as exc:
            self.stats.batches_rejected += 1
            self.self_metrics.decode_failures += 1
            return IngestResult(ok=False, error=str(exc))
        return self.submit(batch)

    def ingest_binary(self, raw: bytes) -> IngestResult:
        """Ingest an in-band binary batch (via the gateway bridge)."""
        self.stats.bytes_received += len(raw)
        try:
            batch = RecordBatch.from_binary(raw)
        except DecodeError as exc:
            self.stats.batches_rejected += 1
            self.self_metrics.decode_failures += 1
            return IngestResult(ok=False, error=str(exc))
        return self.submit(batch)

    def ingest(self, batch: RecordBatch) -> IngestResult:
        """Ingest an already decoded batch (tests, local clients)."""
        return self.submit(batch)

    def submit(self, batch: RecordBatch) -> IngestResult:
        """Admit ``batch`` through the bounded queue, then maybe process it."""
        if self.queue_capacity is not None and len(self._queue) >= self.queue_capacity:
            if self.backpressure is BackpressurePolicy.DROP_OLDEST:
                self._queue.popleft()
                self.self_metrics.batches_dropped += 1
            else:
                self.stats.batches_rejected += 1
                self.self_metrics.batches_rejected += 1
                return IngestResult(
                    ok=False,
                    error="ingest queue full",
                    retry_after_s=self.retry_after_s,
                )
        self._queue.append(batch)
        depth = len(self._queue)
        if depth > self.self_metrics.queue_high_water:
            self.self_metrics.queue_high_water = depth
        if self.autodrain:
            return self.drain()[-1]
        return IngestResult(ok=True, queued=True)

    def drain(self, max_batches: Optional[int] = None) -> List[IngestResult]:
        """Process up to ``max_batches`` queued batches (all by default)."""
        results: List[IngestResult] = []
        while self._queue and (max_batches is None or len(results) < max_batches):
            results.append(self._ingest(self._queue.popleft()))
        return results

    # -- processing ----------------------------------------------------------

    def _ingest(self, batch: RecordBatch) -> IngestResult:
        packet_window = self._packet_windows.setdefault(batch.node, _SeqWindow())
        status_window = self._status_windows.setdefault(batch.node, _SeqWindow())
        accepted_packets = []
        accepted_status = []
        duplicates = 0
        for record in batch.packet_records:
            if record.node != batch.node:
                # A client may only report its own observations.
                self.self_metrics.foreign_records_rejected += 1
                continue
            if packet_window.check_and_add(record.seq):
                accepted_packets.append(record)
            else:
                duplicates += 1
        for record in batch.status_records:
            if record.node != batch.node:
                self.self_metrics.foreign_records_rejected += 1
                continue
            if status_window.check_and_add(record.seq):
                accepted_status.append(record)
            else:
                duplicates += 1
        if accepted_packets:
            add_packets = getattr(self.store, "add_packet_records", None)
            if add_packets is not None:
                add_packets(accepted_packets)
            else:  # stores predating the batch API
                for record in accepted_packets:
                    self.store.add_packet_record(record)
        if accepted_status:
            add_status = getattr(self.store, "add_status_records", None)
            if add_status is not None:
                add_status(accepted_status)
            else:
                for record in accepted_status:
                    self.store.add_status_record(record)
        self.store.note_batch(batch.node, self._clock(), batch.dropped_records)
        self._flush_store()
        self.stats.batches_ok += 1
        self.stats.records_accepted += len(accepted_packets) + len(accepted_status)
        self.stats.duplicates += duplicates
        self.self_metrics.batches_ingested += 1
        self.self_metrics.packet_records_ingested += len(accepted_packets)
        self.self_metrics.status_records_ingested += len(accepted_status)
        self.self_metrics.dedup_hits += duplicates
        return IngestResult(
            ok=True,
            accepted_packets=len(accepted_packets),
            accepted_status=len(accepted_status),
            duplicates=duplicates,
        )

    def _flush_store(self) -> None:
        """Let a durable store decide whether a flush is due."""
        maybe_flush = getattr(self.store, "maybe_flush", None)
        if maybe_flush is not None:
            maybe_flush()
            self._sync_flush_stats()
            return
        # Stores without batching semantics but with commit() (historical
        # third-party drop-ins): flush once per batch as before.
        commit = getattr(self.store, "commit", None)
        if commit is not None:
            commit()

    def _sync_flush_stats(self) -> None:
        """Mirror the store's flush counters into the self-metrics.

        The store is the source of truth: its size/age thresholds can
        fire inside ``add_*_records`` calls, not only when the server
        asks, so the self-metrics copy rather than re-measure.
        """
        stats = getattr(self.store, "flush_stats", None)
        if stats is None:
            return
        self.self_metrics.store_flushes = stats.flushes
        self.self_metrics.flush_latency_last_s = stats.last_latency_s
        self.self_metrics.flush_latency_max_s = stats.max_latency_s
        self.self_metrics.flush_latency_total_s = stats.total_latency_s

    def flush(self) -> None:
        """Force any buffered store writes out (shutdown, test barriers)."""
        flush = getattr(self.store, "flush", None)
        if flush is None:
            return
        started = time.perf_counter()
        flushed = flush()
        if getattr(self.store, "flush_stats", None) is not None:
            self._sync_flush_stats()
        elif flushed:
            self.self_metrics.note_flush(time.perf_counter() - started)

    def close(self) -> None:
        """Orderly shutdown: drain queued batches, flush, close the store.

        The server owns its store (it constructs one when none is
        injected), so closing the server closes the store; store closes
        are idempotent, so an injected store may safely be closed again
        by its creator.
        """
        self.drain()
        self.flush()
        close = getattr(self.store, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "MonitorServer":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def self_metrics_document(self) -> Dict[str, Any]:
        """The ``GET /api/server`` body: self-metrics + queue + wire stats."""
        document = self.self_metrics.to_json_dict()
        document.update(
            {
                "queue_depth": self.queue_depth,
                "queue_capacity": self.queue_capacity,
                "backpressure": self.backpressure.value,
                "autodrain": self.autodrain,
                "bytes_received": self.stats.bytes_received,
            }
        )
        store_stats = getattr(self.store, "flush_stats", None)
        if store_stats is not None:
            document["store"] = {
                "flushes": store_stats.flushes,
                "records_flushed": store_stats.records_flushed,
                "flush_latency_last_ms": store_stats.last_latency_s * 1000.0,
                "flush_latency_max_ms": store_stats.max_latency_s * 1000.0,
            }
        return document
