"""HTTP JSON API over the dashboard — the real wire path of the paper.

A stdlib ``ThreadingHTTPServer`` dispatching from the declarative route
table in :mod:`repro.monitor.routes`.  The supported surface is the
versioned, network-scoped ``/api/v1/...`` API:

==========================================  =================================
``GET  /api/v1/schema``                     Machine-readable route catalogue
``GET  /api/v1/fleet``                      Fleet overview (tiles, totals,
                                            top-N unhealthy networks)
``GET  /api/v1/networks``                   Resident network ids
``GET  /api/v1/server``                     Server self-metrics
``GET  /api/v1/networks/<id>``              One network's ingest counters
``GET  /api/v1/networks/<id>/summary``      Full dashboard document
``GET  /api/v1/networks/<id>/nodes``        Node table
``GET  /api/v1/networks/<id>/links``        Link-quality table
``GET  /api/v1/networks/<id>/delivery``     PDR/latency per pair
``GET  /api/v1/networks/<id>/alerts``       Active alerts
``GET  /api/v1/networks/<id>/health``       Per-node health scores
``GET  /api/v1/networks/<id>/history``      Rolled-up time series
``GET  /api/v1/networks/<id>/dot``          Graphviz topology
``POST /api/v1/networks/<id>/ingest``       Ingest one JSON record batch
                                            (503 + ``Retry-After`` under
                                            backpressure)
==========================================  =================================

plus the HTML pages ``/`` (default network), ``/fleet``,
``/networks/<id>`` and ``/text``.

Every pre-v1 ``/api/*`` path still works as a **legacy alias** bound to
the ``default`` network: it runs the same handler and returns a
byte-identical body, adding ``Deprecation: true`` and a ``Link`` header
that names the successor route.

The server needs a *clock* callable so it works both against a live
simulation (pass ``lambda: sim.now``) and in real time (default:
``time.monotonic`` offset to start at 0).
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from repro.monitor import fleet as fleet_mod
from repro.monitor import health as health_mod
from repro.monitor.codec import codec_for_content_type
from repro.monitor.dashboard import Dashboard
from repro.monitor.ingest import DEFAULT_NETWORK_ID, is_valid_network_id
from repro.monitor.routes import (
    DEPRECATION_HEADER_VALUE,
    LEGACY_ALIASES,
    ROUTES,
    Route,
    route_by_name,
    schema_document,
    successor_path,
)
from repro.monitor.server import MonitorServer
from repro.monitor.stream.events import FLEET_TOPIC, network_topic
from repro.monitor.stream.sse import DEFAULT_HEARTBEAT_S, DEFAULT_RETRY_MS, pump

_INDEX_HTML = """<!DOCTYPE html>
<html><head><title>LoRa mesh monitor</title>
<meta http-equiv="refresh" content="5">
<style>body{font-family:monospace;background:#111;color:#ddd;padding:1em}</style>
</head><body><pre>%s</pre></body></html>
"""

_Headers = Tuple[Tuple[str, str], ...]


def _sanitize(value: Any) -> Any:
    """Replace NaN/Inf with None so the output is strict JSON."""
    if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
        return None
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


class MonitoringHttpServer:
    """Serves the dashboard and the ingestion endpoint over HTTP."""

    def __init__(
        self,
        monitor_server: MonitorServer,
        dashboard: Dashboard,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """Create (but do not start) the HTTP server.

        Args:
            monitor_server: ingestion backend for the ingest routes.
            dashboard: view layer for the ``default`` network; other
                networks get dashboards built lazily from their shards.
            host/port: bind address; port 0 picks a free port.
            clock: "now" provider for dashboard rendering.
        """
        self.monitor_server = monitor_server
        self.dashboard = dashboard
        self._lock = threading.Lock()
        #: Lazily built per-network dashboards; raced by handler threads.
        self._dashboards: Dict[str, Dashboard] = {DEFAULT_NETWORK_ID: dashboard}  # guarded-by: _lock
        if clock is None:
            start = time.monotonic()
            clock = lambda: time.monotonic() - start  # noqa: E731 - tiny closure
        self._clock = clock
        handler = self._make_handler()
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None  # guarded-by: _lock
        #: Wakes the alert-sweep timer for shutdown; an Event carries
        #: its own lock, so no class lock is needed around set()/wait().
        self._sweep_stop = threading.Event()  # guarded-by: threading.Event
        self._sweep_thread: Optional[threading.Thread] = None  # guarded-by: _lock

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) actually bound."""
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve requests on a daemon thread until :meth:`stop` (idempotent).

        Also starts the alert-sweep timer: a daemon thread that runs the
        monitor server's periodic full-rule alert sweep
        (:meth:`MonitorServer.maybe_sweep_alerts`) so silent-node and
        windowed alerts fire — and reach SSE subscribers — even when no
        ingest traffic arrives to piggyback the sweep on.
        """
        with self._lock:
            if self._thread is not None:
                return  # already serving
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True
            )
            self._thread.start()
            self._sweep_stop.clear()
            self._sweep_thread = threading.Thread(
                target=self._sweep_loop, daemon=True
            )
            self._sweep_thread.start()

    def _sweep_loop(self) -> None:
        """Tick the server's alert sweep until :meth:`stop`.

        The tick period is the server's sweep interval; the server
        itself paces actual sweeps on *its* clock inside
        ``maybe_sweep_alerts``, so a frozen-clock server (tests, the
        serve CLI's post-run snapshot) just no-ops each tick.
        """
        interval_s = self.monitor_server.alert_sweep_interval_s
        while not self._sweep_stop.wait(interval_s):
            self.monitor_server.maybe_sweep_alerts()

    def stop(self) -> None:
        """Shut the serve and sweep threads down and release the socket.

        Idempotent, and safe *before* :meth:`start`: ``shutdown()`` is
        only called when a serve thread actually exists — calling it
        with no ``serve_forever`` running blocks forever on an event
        that is never set.  The joins run outside the lock (the serve
        thread never takes it, but keeping joins out of critical
        sections is the house rule — RL101).
        """
        with self._lock:
            thread, self._thread = self._thread, None
            sweep_thread, self._sweep_thread = self._sweep_thread, None
        self._sweep_stop.set()
        if sweep_thread is not None:
            sweep_thread.join(timeout=5.0)
        if thread is not None:
            self._httpd.shutdown()
            thread.join(timeout=5.0)
        self._httpd.server_close()  # idempotent; safe to repeat

    def close(self) -> None:
        """Alias for :meth:`stop` (context-manager / RL103 shape)."""
        self.stop()

    def __enter__(self) -> "MonitoringHttpServer":
        self.start()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()

    def dashboard_for(self, network_id: str) -> Optional[Dashboard]:
        """The (lazily built) dashboard of one network, None if unknown.

        The ``default`` network always resolves to the injected
        dashboard; other networks get a view over their shard's store
        the first time they are asked for.  Handler threads race here,
        so the cache is double-checked under the lock: the store lookup
        (which takes the server lock) stays outside, and the winner of a
        build race is whoever publishes last — both views wrap the same
        store, so either is correct.
        """
        if network_id == DEFAULT_NETWORK_ID:
            return self.dashboard
        store = self.monitor_server.store_for(network_id)
        if store is None:
            with self._lock:
                self._dashboards.pop(network_id, None)
            return None
        with self._lock:
            cached = self._dashboards.get(network_id)
            if cached is not None and cached.store is store:
                return cached
        dashboard = Dashboard(
            store,
            report_interval_s=self.dashboard.report_interval_s,
            monitor_server=self.monitor_server,
            network_id=network_id,
        )
        with self._lock:
            current = self._dashboards.get(network_id)
            if current is not None and current.store is store:
                return current  # lost the build race; use the winner
            self._dashboards[network_id] = dashboard
            return dashboard

    def _make_handler(self) -> type:
        api = self

        class Handler(BaseHTTPRequestHandler):
            # Quiet: the simulation benches hammer this endpoint.
            def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
                pass

            # -- plumbing -----------------------------------------------------

            def _send(
                self,
                code: int,
                body: bytes,
                content_type: str,
                extra_headers: _Headers = (),
            ) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                for name, value in extra_headers:
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(body)

            def _send_json(
                self,
                document: Any,
                code: int = 200,
                extra_headers: _Headers = (),
            ) -> None:
                body = json.dumps(_sanitize(document), indent=1).encode("utf-8")
                self._send(code, body, "application/json", extra_headers)

            def _query_params(self) -> Dict[str, str]:
                from urllib.parse import parse_qs, urlsplit
                raw = urlsplit(self.path).query
                return {key: values[0] for key, values in parse_qs(raw).items()}

            # -- dispatch -----------------------------------------------------

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                self._dispatch("GET")

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                self._dispatch("POST")

            def _dispatch(self, method: str) -> None:
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                legacy_route = LEGACY_ALIASES.get(path)
                if legacy_route is not None:
                    route = route_by_name(legacy_route)
                    if route.method == method:
                        headers: _Headers = (
                            ("Deprecation", DEPRECATION_HEADER_VALUE),
                            (
                                "Link",
                                f'<{successor_path(path)}>; rel="successor-version"',
                            ),
                        )
                        self._run(route, DEFAULT_NETWORK_ID, headers, legacy=True)
                        return
                for route in ROUTES:
                    params = route.match(method, path)
                    if params is None:
                        continue
                    network = params.get("network", DEFAULT_NETWORK_ID)
                    if not is_valid_network_id(network):
                        self._send_json(
                            {"error": f"invalid network id {network!r}"}, code=400
                        )
                        return
                    self._run(route, network, (), legacy=False)
                    return
                self._send_json({"error": "not found"}, code=404)

            def _run(
                self, route: Route, network: str, headers: _Headers, legacy: bool
            ) -> None:
                handler = getattr(self, "_h_" + route.name.replace("-", "_"))
                handler(network, headers, legacy)

            def _network_dashboard(
                self, network: str, headers: _Headers
            ) -> Optional[Dashboard]:
                dashboard = api.dashboard_for(network)
                if dashboard is None:
                    self._send_json(
                        {"error": f"unknown network {network!r}"},
                        code=404,
                        extra_headers=headers,
                    )
                return dashboard

            # -- fleet-level handlers ----------------------------------------

            def _h_schema(self, network: str, headers: _Headers, legacy: bool) -> None:
                self._send_json(schema_document(), extra_headers=headers)

            def _h_fleet(self, network: str, headers: _Headers, legacy: bool) -> None:
                overview = fleet_mod.fleet_overview(
                    api.monitor_server,
                    api._clock(),
                    report_interval_s=api.dashboard.report_interval_s,
                )
                self._send_json(overview, extra_headers=headers)

            def _h_networks(self, network: str, headers: _Headers, legacy: bool) -> None:
                self._send_json(api.monitor_server.networks(), extra_headers=headers)

            def _h_server_metrics(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                self._send_json(
                    api.monitor_server.self_metrics_document(), extra_headers=headers
                )

            # -- stream handlers ---------------------------------------------

            def _serve_stream(self, topic: str, headers: _Headers) -> None:
                """Subscribe to ``topic`` and pump SSE frames until EOF.

                The response is a long-lived ``text/event-stream`` body:
                headers go out manually (no Content-Length), then the
                handler thread blocks in :func:`pump` moving events from
                its bounded subscription queue into the socket, emitting
                comment heartbeats while the topic is quiet.  The
                subscription is deregistered on any exit path so a gone
                client never leaks queue memory.
                """
                params = self._query_params()
                try:
                    heartbeat_s = float(params.get("heartbeat", str(DEFAULT_HEARTBEAT_S)))
                    limit = int(params["limit"]) if "limit" in params else None
                except ValueError:
                    self._send_json(
                        {"error": "heartbeat must be a float, limit an int"},
                        code=400,
                        extra_headers=headers,
                    )
                    return
                if heartbeat_s <= 0 or (limit is not None and limit < 1):
                    self._send_json(
                        {"error": "heartbeat must be > 0 and limit >= 1"},
                        code=400,
                        extra_headers=headers,
                    )
                    return
                # The SSE resume cursor: the Last-Event-ID header a
                # reconnecting EventSource sends wins; the query
                # parameter serves clients that cannot set headers.
                # Anything non-integer is treated as absent (a fresh
                # subscription), matching EventSource behaviour.
                raw_cursor = self.headers.get(
                    "Last-Event-ID", params.get("last_event_id")
                )
                last_event_ids: Optional[Dict[str, int]] = None
                if raw_cursor is not None:
                    try:
                        last_event_ids = {topic: int(raw_cursor)}
                    except ValueError:
                        last_event_ids = None
                hub = api.monitor_server.stream
                subscription = hub.subscribe([topic], last_event_ids=last_event_ids)
                try:
                    self.send_response(200)
                    self.send_header("Content-Type", "text/event-stream")
                    self.send_header("Cache-Control", "no-cache")
                    for name, value in headers:
                        self.send_header(name, value)
                    self.end_headers()
                    pump(
                        subscription,
                        self.wfile,
                        heartbeat_s=heartbeat_s,
                        limit=limit,
                        retry_ms=DEFAULT_RETRY_MS,
                    )
                finally:
                    hub.unsubscribe(subscription)

            def _h_stream(self, network: str, headers: _Headers, legacy: bool) -> None:
                self._serve_stream(FLEET_TOPIC, headers)

            def _h_network_stream(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                # Unknown networks are legal: subscribing does not create
                # a shard, the stream simply stays quiet until the
                # network's first batch arrives (heartbeats still flow).
                self._serve_stream(network_topic(network), headers)

            # -- network-scoped handlers -------------------------------------

            def _h_network_detail(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                document = api.monitor_server.network_document(network)
                if document is None:
                    self._send_json(
                        {"error": f"unknown network {network!r}"},
                        code=404,
                        extra_headers=headers,
                    )
                    return
                self._send_json(document, extra_headers=headers)

            def _h_network_summary(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                dashboard = self._network_dashboard(network, headers)
                if dashboard is not None:
                    self._send_json(
                        dashboard.to_json_dict(api._clock()), extra_headers=headers
                    )

            def _h_network_nodes(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                dashboard = self._network_dashboard(network, headers)
                if dashboard is not None:
                    self._send_json(
                        dashboard.node_rows(api._clock()), extra_headers=headers
                    )

            def _h_network_links(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                dashboard = self._network_dashboard(network, headers)
                if dashboard is not None:
                    self._send_json(dashboard.link_rows(), extra_headers=headers)

            def _h_network_delivery(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                dashboard = self._network_dashboard(network, headers)
                if dashboard is not None:
                    self._send_json(dashboard.pdr_rows(), extra_headers=headers)

            def _h_network_alerts(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                dashboard = self._network_dashboard(network, headers)
                if dashboard is None:
                    return
                now = api._clock()
                dashboard.alerts.evaluate(now)
                self._send_json(
                    [alert.to_json_dict() for alert in dashboard.alerts.active()],
                    extra_headers=headers,
                )

            def _h_network_health(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                dashboard = self._network_dashboard(network, headers)
                if dashboard is None:
                    return
                scores = health_mod.network_health(dashboard.store, api._clock())
                self._send_json(
                    {
                        str(node): {
                            "score": score.score,
                            "liveness": score.liveness,
                            "delivery": score.delivery,
                            "spectrum": score.spectrum,
                            "battery": score.battery,
                        }
                        for node, score in scores.items()
                    },
                    extra_headers=headers,
                )

            def _h_network_history(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                from repro.errors import StorageError
                from repro.monitor.rollup import (
                    rollup_packet_rate,
                    rollup_status_field,
                )

                dashboard = self._network_dashboard(network, headers)
                if dashboard is None:
                    return
                params = self._query_params()
                try:
                    node = int(params["node"])
                    interval = float(params.get("interval", "300"))
                except (KeyError, ValueError):
                    self._send_json(
                        {"error": "need ?node=<int>[&field=...][&interval=<s>]"},
                        code=400,
                        extra_headers=headers,
                    )
                    return
                field = params.get("field")
                if field is not None:
                    from repro.monitor.records import StatusRecord
                    import dataclasses
                    valid = {f.name for f in dataclasses.fields(StatusRecord)}
                    if field not in valid:
                        self._send_json(
                            {"error": f"unknown status field {field!r}"},
                            code=400,
                            extra_headers=headers,
                        )
                        return
                try:
                    if field is None:
                        series = rollup_packet_rate(
                            dashboard.store, interval_s=interval, node=node
                        )
                    else:
                        series = rollup_status_field(
                            dashboard.store, node=node, field=field,
                            interval_s=interval,
                        )
                except StorageError as exc:
                    self._send_json(
                        {"error": str(exc)}, code=400, extra_headers=headers
                    )
                    return
                self._send_json(
                    [
                        {
                            "start": bucket.start,
                            "count": bucket.count,
                            "mean": bucket.mean,
                            "min": bucket.minimum,
                            "max": bucket.maximum,
                        }
                        for bucket in series.buckets()
                    ],
                    extra_headers=headers,
                )

            def _h_network_dot(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                dashboard = self._network_dashboard(network, headers)
                if dashboard is not None:
                    self._send(
                        200,
                        dashboard.render_dot().encode("utf-8"),
                        "text/plain",
                        headers,
                    )

            def _h_network_ingest(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length)
                if legacy:
                    # Pre-v1 behaviour: JSON only; the batch's own stamp
                    # (or its absence, meaning ``default``) decides the
                    # network.
                    result = api.monitor_server.ingest_json(raw)
                else:
                    # v1 negotiates the codec via Content-Type; absent or
                    # JSON types run the exact historical JSON path.
                    codec = codec_for_content_type(self.headers.get("Content-Type"))
                    result = api.monitor_server.ingest_encoded(
                        raw, codec, network_id=network
                    )
                if result.ok:
                    self._send_json(
                        {
                            "ok": True,
                            "queued": result.queued,
                            "accepted_packets": result.accepted_packets,
                            "accepted_status": result.accepted_status,
                            "duplicates": result.duplicates,
                        },
                        extra_headers=headers,
                    )
                elif result.retry_after_s is not None:
                    # Backpressure: tell the client when to retry.
                    body = json.dumps(
                        {"ok": False, "error": result.error,
                         "retry_after_s": result.retry_after_s}
                    ).encode("utf-8")
                    self.send_response(503)
                    self.send_header("Content-Type", "application/json")
                    self.send_header(
                        "Retry-After",
                        str(max(1, int(math.ceil(result.retry_after_s)))),
                    )
                    self.send_header("Content-Length", str(len(body)))
                    for name, value in headers:
                        self.send_header(name, value)
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self._send_json(
                        {"ok": False, "error": result.error},
                        code=400,
                        extra_headers=headers,
                    )

            # -- ui handlers --------------------------------------------------

            def _h_index(self, network: str, headers: _Headers, legacy: bool) -> None:
                from repro.monitor.webview import render_html
                page = render_html(api.dashboard, api._clock())
                self._send(200, page.encode("utf-8"), "text/html", headers)

            def _h_fleet_page(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                from repro.monitor.webview import render_fleet_html
                overview = fleet_mod.fleet_overview(
                    api.monitor_server,
                    api._clock(),
                    report_interval_s=api.dashboard.report_interval_s,
                )
                page = render_fleet_html(overview)
                self._send(200, page.encode("utf-8"), "text/html", headers)

            def _h_network_page(
                self, network: str, headers: _Headers, legacy: bool
            ) -> None:
                from repro.monitor.webview import render_html
                dashboard = self._network_dashboard(network, headers)
                if dashboard is not None:
                    page = render_html(dashboard, api._clock(), network_id=network)
                    self._send(200, page.encode("utf-8"), "text/html", headers)

            def _h_text(self, network: str, headers: _Headers, legacy: bool) -> None:
                text = api.dashboard.render_text(api._clock())
                self._send(200, (_INDEX_HTML % text).encode("utf-8"), "text/html", headers)

        return Handler
