"""HTTP JSON API over the dashboard — the real wire path of the paper.

A stdlib ``ThreadingHTTPServer`` exposing:

====================  =====================================================
``GET  /``            Rich HTML dashboard (tiles, SVG topology, tables)
``GET  /text``        Plain-text dashboard wrapped in ``<pre>``
``GET  /api/summary`` Full dashboard document
``GET  /api/nodes``   Node table
``GET  /api/links``   Link-quality table
``GET  /api/delivery`` PDR/latency per pair
``GET  /api/alerts``  Active alerts
``GET  /api/health``  Per-node health scores
``GET  /api/history`` Rolled-up time series:
                      ``?node=N&field=queue_depth&interval=300`` for a
                      status field, ``?node=N&interval=300`` (no field)
                      for the packet rate
``GET  /api/server``  Server self-metrics ("monitor the monitor"):
                      ingest/dedup/decode counters, queue depth and
                      high-water mark, store flush latencies
``POST /api/ingest``  Ingest one JSON record batch (what a real ESP32
                      client would POST over WiFi).  Replies 503 with a
                      ``Retry-After`` header when the ingest queue is
                      full (REJECT backpressure) — clients retry later
====================  =====================================================

The server needs a *clock* callable so it works both against a live
simulation (pass ``lambda: sim.now``) and in real time (default:
``time.monotonic`` offset to start at 0).
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional, Tuple

from repro.monitor import health as health_mod
from repro.monitor.dashboard import Dashboard
from repro.monitor.server import MonitorServer

_INDEX_HTML = """<!DOCTYPE html>
<html><head><title>LoRa mesh monitor</title>
<meta http-equiv="refresh" content="5">
<style>body{font-family:monospace;background:#111;color:#ddd;padding:1em}</style>
</head><body><pre>%s</pre></body></html>
"""


def _sanitize(value: Any) -> Any:
    """Replace NaN/Inf with None so the output is strict JSON."""
    if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
        return None
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


class MonitoringHttpServer:
    """Serves the dashboard and the ingestion endpoint over HTTP."""

    def __init__(
        self,
        monitor_server: MonitorServer,
        dashboard: Dashboard,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """Create (but do not start) the HTTP server.

        Args:
            monitor_server: ingestion backend for POST /api/ingest.
            dashboard: view layer for the GET endpoints.
            host/port: bind address; port 0 picks a free port.
            clock: "now" provider for dashboard rendering.
        """
        self.monitor_server = monitor_server
        self.dashboard = dashboard
        if clock is None:
            start = time.monotonic()
            clock = lambda: time.monotonic() - start  # noqa: E731 - tiny closure
        self._clock = clock
        handler = self._make_handler()
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) actually bound."""
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve requests on a daemon thread until :meth:`stop`."""
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _make_handler(self) -> type:
        api = self

        class Handler(BaseHTTPRequestHandler):
            # Quiet: the simulation benches hammer this endpoint.
            def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
                pass

            def _send(self, code: int, body: bytes, content_type: str) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _send_json(self, document: Any, code: int = 200) -> None:
                body = json.dumps(_sanitize(document), indent=1).encode("utf-8")
                self._send(code, body, "application/json")

            def _query_params(self) -> dict:
                from urllib.parse import parse_qs, urlsplit
                raw = urlsplit(self.path).query
                return {key: values[0] for key, values in parse_qs(raw).items()}

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                now = api._clock()
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                if path == "/":
                    from repro.monitor.webview import render_html
                    page = render_html(api.dashboard, now)
                    self._send(200, page.encode("utf-8"), "text/html")
                elif path == "/text":
                    text = api.dashboard.render_text(now)
                    self._send(200, (_INDEX_HTML % text).encode("utf-8"), "text/html")
                elif path == "/api/summary":
                    self._send_json(api.dashboard.to_json_dict(now))
                elif path == "/api/nodes":
                    self._send_json(api.dashboard.node_rows(now))
                elif path == "/api/links":
                    self._send_json(api.dashboard.link_rows())
                elif path == "/api/delivery":
                    self._send_json(api.dashboard.pdr_rows())
                elif path == "/api/alerts":
                    api.dashboard.alerts.evaluate(now)
                    self._send_json(
                        [
                            {
                                "rule": alert.rule,
                                "node": alert.node,
                                "severity": alert.severity,
                                "message": alert.message,
                                "raised_at": alert.raised_at,
                            }
                            for alert in api.dashboard.alerts.active()
                        ]
                    )
                elif path == "/api/health":
                    scores = health_mod.network_health(api.dashboard.store, now)
                    self._send_json(
                        {
                            str(node): {
                                "score": score.score,
                                "liveness": score.liveness,
                                "delivery": score.delivery,
                                "spectrum": score.spectrum,
                                "battery": score.battery,
                            }
                            for node, score in scores.items()
                        }
                    )
                elif path == "/api/server":
                    self._send_json(api.monitor_server.self_metrics_document())
                elif path == "/api/history":
                    self._history()
                elif path == "/api/dot":
                    self._send(200, api.dashboard.render_dot().encode("utf-8"), "text/plain")
                else:
                    self._send_json({"error": "not found"}, code=404)

            def _history(self) -> None:
                from repro.errors import StorageError
                from repro.monitor.rollup import (
                    rollup_packet_rate,
                    rollup_status_field,
                )

                params = self._query_params()
                try:
                    node = int(params["node"])
                    interval = float(params.get("interval", "300"))
                except (KeyError, ValueError):
                    self._send_json(
                        {"error": "need ?node=<int>[&field=...][&interval=<s>]"},
                        code=400,
                    )
                    return
                field = params.get("field")
                if field is not None:
                    from repro.monitor.records import StatusRecord
                    import dataclasses
                    valid = {f.name for f in dataclasses.fields(StatusRecord)}
                    if field not in valid:
                        self._send_json({"error": f"unknown status field {field!r}"}, code=400)
                        return
                try:
                    if field is None:
                        series = rollup_packet_rate(
                            api.dashboard.store, interval_s=interval, node=node
                        )
                    else:
                        series = rollup_status_field(
                            api.dashboard.store, node=node, field=field,
                            interval_s=interval,
                        )
                except StorageError as exc:
                    self._send_json({"error": str(exc)}, code=400)
                    return
                self._send_json([
                    {
                        "start": bucket.start,
                        "count": bucket.count,
                        "mean": bucket.mean,
                        "min": bucket.minimum,
                        "max": bucket.maximum,
                    }
                    for bucket in series.buckets()
                ])

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0].rstrip("/")
                if path != "/api/ingest":
                    self._send_json({"error": "not found"}, code=404)
                    return
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length)
                result = api.monitor_server.ingest_json(raw)
                if result.ok:
                    self._send_json(
                        {
                            "ok": True,
                            "queued": result.queued,
                            "accepted_packets": result.accepted_packets,
                            "accepted_status": result.accepted_status,
                            "duplicates": result.duplicates,
                        }
                    )
                elif result.retry_after_s is not None:
                    # Backpressure: tell the client when to retry.
                    body = json.dumps(
                        {"ok": False, "error": result.error,
                         "retry_after_s": result.retry_after_s}
                    ).encode("utf-8")
                    self.send_response(503)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Retry-After", str(max(1, int(math.ceil(result.retry_after_s)))))
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self._send_json({"ok": False, "error": result.error}, code=400)

        return Handler
