"""The monitoring server's HTTP route table — single source of truth.

Every endpoint the HTTP layer serves is declared here as a
:class:`Route`; :mod:`repro.monitor.httpapi` dispatches from this table,
``GET /api/v1/schema`` is generated from it, and ``docs/API.md`` is
rendered from the same schema (a test keeps the file in sync).  A route
that is not in this table does not exist, so the schema can never drift
from the dispatch logic.

Versioning
----------

The supported API lives under ``/api/v1/...`` and is network-scoped:
``/api/v1/networks/<network>/nodes`` and friends, plus the fleet-level
``/api/v1/fleet`` and ``/api/v1/networks``.  Every pre-v1 ``/api/*``
path remains as a **legacy alias** onto the same handler bound to the
``default`` network; aliases return byte-identical bodies and add a
``Deprecation`` header pointing at the v1 path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

API_VERSION = "v1"

#: Value of the ``Deprecation`` header on legacy-alias responses
#: (draft-ietf-httpapi-deprecation-header boolean form).
DEPRECATION_HEADER_VALUE = "true"


@dataclass(frozen=True)
class Param:
    """One query parameter of a route."""

    name: str
    type: str
    required: bool = False
    description: str = ""
    default: Optional[str] = None

    def to_json_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "name": self.name,
            "type": self.type,
            "required": self.required,
            "description": self.description,
        }
        if self.default is not None:
            document["default"] = self.default
        return document


@dataclass(frozen=True)
class Route:
    """One HTTP endpoint.

    Attributes:
        name: stable identifier (handler lookup key and schema key).
        method: HTTP method.
        pattern: path with ``<network>`` placeholders for path params.
        summary: one-line human description.
        response: shape of the response body.
        params: query parameters.
        kind: ``api`` (JSON, in the schema) or ``ui`` (HTML/text pages).
    """

    name: str
    method: str
    pattern: str
    summary: str
    response: str
    params: Tuple[Param, ...] = ()
    kind: str = "api"

    @property
    def path_params(self) -> Tuple[str, ...]:
        return tuple(
            segment[1:-1]
            for segment in self.pattern.strip("/").split("/")
            if segment.startswith("<") and segment.endswith(">")
        )

    def match(self, method: str, path: str) -> Optional[Dict[str, str]]:
        """Path params when ``method path`` hits this route, else None."""
        if method != self.method:
            return None
        want = self.pattern.strip("/").split("/")
        have = path.strip("/").split("/")
        if len(want) != len(have):
            return None
        params: Dict[str, str] = {}
        for expected, actual in zip(want, have):
            if expected.startswith("<") and expected.endswith(">"):
                if not actual:
                    return None
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "method": self.method,
            "path": self.pattern,
            "summary": self.summary,
            "path_params": list(self.path_params),
            "query_params": [param.to_json_dict() for param in self.params],
            "response": self.response,
        }


_STREAM_PARAMS = (
    Param(
        "heartbeat",
        "float",
        description="Comment-heartbeat period in seconds while the topic is quiet.",
        default="15",
    ),
    Param(
        "limit",
        "int",
        description=(
            "Close the stream after this many events (bounded mode for "
            "tests and scripts); omitted = stream until disconnect."
        ),
    ),
    Param(
        "last_event_id",
        "int",
        description=(
            "Resume cursor for clients that cannot set the Last-Event-ID "
            "header; the header wins when both are present."
        ),
    ),
)

_HISTORY_PARAMS = (
    Param("node", "int", required=True, description="Node address the series is for."),
    Param(
        "field",
        "string",
        description=(
            "StatusRecord field to roll up (e.g. queue_depth, battery_v); "
            "omitted = packet rate."
        ),
    ),
    Param(
        "interval",
        "float",
        description="Bucket width in seconds.",
        default="300",
    ),
)

#: Every route the HTTP layer serves, dispatch order.
ROUTES: Tuple[Route, ...] = (
    # -- fleet-level ---------------------------------------------------------
    Route(
        name="schema",
        method="GET",
        pattern="/api/v1/schema",
        summary="Machine-readable description of every API route.",
        response="object: api_version, routes[], legacy_aliases{}",
    ),
    Route(
        name="fleet",
        method="GET",
        pattern="/api/v1/fleet",
        summary="Fleet overview: per-network tiles, totals, top-N unhealthy.",
        response="object: now, networks[], totals{}, top_unhealthy[]",
    ),
    Route(
        name="networks",
        method="GET",
        pattern="/api/v1/networks",
        summary="Ids of every resident network.",
        response="array of network-id strings",
    ),
    Route(
        name="server-metrics",
        method="GET",
        pattern="/api/v1/server",
        summary="Server self-metrics: ingest/dedup/queue/flush counters.",
        response="object: ingestion counters, queue state, per-store flush stats",
    ),
    Route(
        name="stream",
        method="GET",
        pattern="/api/v1/stream",
        summary=(
            "Live fleet event stream (SSE). Pushes repro.stream/1 delta "
            "events on the fleet topic — fleet-tile changes as batches "
            "arrive — with comment heartbeats while quiet. Reconnecting "
            "clients resume from the Last-Event-ID header (bounded replay "
            "ring; see docs/STREAMING.md)."
        ),
        response=(
            "text/event-stream of repro.stream/1 events (event/id/data "
            "frames, ': keep-alive' heartbeats, retry hint)"
        ),
        params=_STREAM_PARAMS,
    ),
    # -- network-scoped ------------------------------------------------------
    Route(
        name="network-stream",
        method="GET",
        pattern="/api/v1/networks/<network>/stream",
        summary=(
            "Live event stream (SSE) for one network: ingest-delta, "
            "rollup-update, alert-raised/alert-cleared and fleet-tile "
            "events as its batches arrive. Same framing, heartbeat and "
            "Last-Event-ID resume semantics as /api/v1/stream."
        ),
        response=(
            "text/event-stream of repro.stream/1 events (event/id/data "
            "frames, ': keep-alive' heartbeats, retry hint)"
        ),
        params=_STREAM_PARAMS,
    ),
    Route(
        name="network-detail",
        method="GET",
        pattern="/api/v1/networks/<network>",
        summary="One network's ingest counters and queue share.",
        response="object: network, batches/records ingested, dedup_hits, queued_batches, last_batch_at",
    ),
    Route(
        name="network-summary",
        method="GET",
        pattern="/api/v1/networks/<network>/summary",
        summary="Full dashboard document for one network.",
        response="object: now, network_health, network_pdr, nodes[], links[], delivery[], composition, alerts[], server{}, drops{}",
    ),
    Route(
        name="network-nodes",
        method="GET",
        pattern="/api/v1/networks/<network>/nodes",
        summary="Node table for one network.",
        response="array of node rows",
    ),
    Route(
        name="network-links",
        method="GET",
        pattern="/api/v1/networks/<network>/links",
        summary="Link-quality table for one network.",
        response="array of link rows",
    ),
    Route(
        name="network-delivery",
        method="GET",
        pattern="/api/v1/networks/<network>/delivery",
        summary="PDR/latency per (src, dst) pair for one network.",
        response="array of delivery rows",
    ),
    Route(
        name="network-alerts",
        method="GET",
        pattern="/api/v1/networks/<network>/alerts",
        summary="Active alerts for one network.",
        response="array: rule, node, severity, message, raised_at",
    ),
    Route(
        name="network-health",
        method="GET",
        pattern="/api/v1/networks/<network>/health",
        summary="Per-node health scores for one network.",
        response="object keyed by node: score, liveness, delivery, spectrum, battery",
    ),
    Route(
        name="network-history",
        method="GET",
        pattern="/api/v1/networks/<network>/history",
        summary="Rolled-up time series for one node of one network.",
        response="array of buckets: start, count, mean, min, max",
        params=_HISTORY_PARAMS,
    ),
    Route(
        name="network-dot",
        method="GET",
        pattern="/api/v1/networks/<network>/dot",
        summary="Graphviz topology of one network.",
        response="text/plain DOT document",
    ),
    Route(
        name="network-ingest",
        method="POST",
        pattern="/api/v1/networks/<network>/ingest",
        summary=(
            "Ingest one record batch for this network. The codec is negotiated "
            "via Content-Type: application/json (default) or the compact "
            "binary telemetry format application/vnd.repro.telemetry+binary "
            "(see PROTOCOL.md). 503 + Retry-After under backpressure, 400 on "
            "malformed or cross-network batches. The legacy /api/ingest alias "
            "is JSON-only."
        ),
        response="object: ok, queued, accepted_packets, accepted_status, duplicates",
    ),
    # -- ui ------------------------------------------------------------------
    Route(
        name="index",
        method="GET",
        pattern="/",
        summary="HTML dashboard of the default network.",
        response="text/html",
        kind="ui",
    ),
    Route(
        name="fleet-page",
        method="GET",
        pattern="/fleet",
        summary="HTML fleet overview.",
        response="text/html",
        kind="ui",
    ),
    Route(
        name="network-page",
        method="GET",
        pattern="/networks/<network>",
        summary="HTML dashboard of one network.",
        response="text/html",
        kind="ui",
    ),
    Route(
        name="text",
        method="GET",
        pattern="/text",
        summary="Plain-text dashboard of the default network.",
        response="text/html (pre-wrapped text)",
        kind="ui",
    ),
)

_ROUTES_BY_NAME: Dict[str, Route] = {route.name: route for route in ROUTES}

#: Legacy pre-v1 paths -> the v1 route each one aliases, always bound to
#: the ``default`` network.  Bodies are byte-identical to the v1 route;
#: responses add a ``Deprecation`` header and a ``Link`` to the
#: successor.
LEGACY_ALIASES: Dict[str, str] = {
    "/api/summary": "network-summary",
    "/api/nodes": "network-nodes",
    "/api/links": "network-links",
    "/api/delivery": "network-delivery",
    "/api/alerts": "network-alerts",
    "/api/health": "network-health",
    "/api/history": "network-history",
    "/api/dot": "network-dot",
    "/api/server": "server-metrics",
    "/api/ingest": "network-ingest",
}


def route_by_name(name: str) -> Route:
    return _ROUTES_BY_NAME[name]


def successor_path(legacy_path: str) -> str:
    """The v1 path a legacy alias should point clients at."""
    route = _ROUTES_BY_NAME[LEGACY_ALIASES[legacy_path]]
    return route.pattern.replace("<network>", "default")


def api_routes() -> List[Route]:
    """The JSON API routes (what the schema documents)."""
    return [route for route in ROUTES if route.kind == "api"]


def schema_document() -> Dict[str, Any]:
    """The ``GET /api/v1/schema`` body."""
    return {
        "api_version": API_VERSION,
        "routes": [route.to_json_dict() for route in api_routes()],
        "legacy_aliases": {
            legacy: {
                "successor": successor_path(legacy),
                "route": name,
                "deprecation": DEPRECATION_HEADER_VALUE,
            }
            for legacy, name in sorted(LEGACY_ALIASES.items())
        },
    }


def render_api_markdown() -> str:
    """``docs/API.md`` content, generated from the route table."""
    lines: List[str] = [
        "# HTTP API",
        "",
        "<!-- Generated from repro.monitor.routes; edit that module, not this file.",
        "     tests/unit/test_api_contract.py keeps the two in sync. -->",
        "",
        "The monitoring server exposes a versioned JSON API under"
        f" `/api/{API_VERSION}/...`.",
        "All endpoints are network-scoped where it matters: one server monitors many",
        "independent mesh networks, and `<network>` in a path selects one of them",
        "(single-network deployments live in the implicit `default` network).",
        "",
        "The full machine-readable description of this surface is served at",
        f"`GET /api/{API_VERSION}/schema`; this file is rendered from the same",
        "route table.",
        "",
        "## Routes",
        "",
    ]
    for route in api_routes():
        lines.append(f"### `{route.method} {route.pattern}`")
        lines.append("")
        lines.append(route.summary)
        lines.append("")
        if route.params:
            lines.append("Query parameters:")
            lines.append("")
            for param in route.params:
                required = "required" if param.required else "optional"
                default = f", default `{param.default}`" if param.default else ""
                lines.append(
                    f"- `{param.name}` ({param.type}, {required}{default})"
                    + (f" — {param.description}" if param.description else "")
                )
            lines.append("")
        lines.append(f"Response: {route.response}")
        lines.append("")
    lines.extend(
        [
            "## Legacy aliases",
            "",
            "Every pre-v1 path keeps working, bound to the `default` network, with a",
            "byte-identical body plus `Deprecation: true` and a `Link` header naming",
            "the successor route:",
            "",
            "| Legacy path | Successor |",
            "|---|---|",
        ]
    )
    for legacy in sorted(LEGACY_ALIASES):
        lines.append(f"| `{legacy}` | `{successor_path(legacy)}` |")
    lines.extend(
        [
            "",
            "## UI pages",
            "",
        ]
    )
    for route in ROUTES:
        if route.kind == "ui":
            lines.append(f"- `{route.method} {route.pattern}` — {route.summary}")
    lines.extend(
        [
            "",
            "## Python facade",
            "",
            "The supported in-process surface is `repro.api`; everything below is",
            "importable from there and covered by the compatibility promise",
            "(lint rule RL007 flags deep imports of these names from tests,",
            "benchmarks and examples):",
            "",
        ]
    )
    # Imported here: repro.api pulls in the whole stack (including this
    # module), so a top-level import would be a cycle.
    import repro.api

    for name in repro.api.__all__:
        lines.append(f"- `{name}`")
    lines.append("")
    return "\n".join(lines)
