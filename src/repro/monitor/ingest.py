"""Ingestion-pipeline primitives shared by the monitoring server.

Split out of :mod:`repro.monitor.server` when the server went
multi-tenant (one server, many mesh networks): these are the wire-level
building blocks — the backpressure policy, the per-batch result, the
wire/self-metrics counters and the bounded dedup window — that every
per-network shard reuses.  Importing them from
``repro.monitor.server`` still works but emits a
``DeprecationWarning``; the supported import paths are this module and
the :mod:`repro.api` facade.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Optional, Set

#: The implicit network single-network deployments live in.  Every API
#: that grew a ``network_id`` parameter defaults to this, so pre-fleet
#: callers keep working unchanged.
DEFAULT_NETWORK_ID = "default"

#: Network ids appear in URLs, file names (per-network SQLite stores)
#: and JSON keys, so they are restricted to a conservative token.
_NETWORK_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


def is_valid_network_id(network_id: str) -> bool:
    """True when ``network_id`` is a legal network identifier."""
    return bool(_NETWORK_ID_RE.match(network_id))


def validate_network_id(network_id: str) -> str:
    """Return ``network_id`` or raise ``ValueError`` for an illegal one."""
    if not isinstance(network_id, str) or not is_valid_network_id(network_id):
        raise ValueError(
            f"invalid network id {network_id!r}: expected 1-64 characters "
            "from [A-Za-z0-9_.-], starting with an alphanumeric"
        )
    return network_id


class BackpressurePolicy(Enum):
    """What a full ingest queue does with the next batch."""

    #: Refuse the batch; the result carries ``retry_after_s`` so the
    #: client backs off and retries (at-least-once uplinks redeliver).
    REJECT = "reject"
    #: Evict the oldest queued batch to admit the new one.  Bounded
    #: staleness for a live dashboard; the evicted batch is lost unless
    #: the client retries it.
    DROP_OLDEST = "drop_oldest"


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one batch ingestion."""

    ok: bool
    accepted_packets: int = 0
    accepted_status: int = 0
    duplicates: int = 0
    error: Optional[str] = None
    #: True when the batch was admitted to the ingest queue but not yet
    #: processed (``autodrain=False``); counts arrive after drain().
    queued: bool = False
    #: Backpressure hint: seconds the client should wait before retrying.
    retry_after_s: Optional[float] = None


@dataclass
class ServerStats:
    """Server-side counters (historical shape, kept for compatibility)."""

    batches_ok: int = 0
    batches_rejected: int = 0
    records_accepted: int = 0
    duplicates: int = 0
    bytes_received: int = 0


@dataclass
class ServerSelfMetrics:
    """Ingestion-pipeline self-metrics ("monitor the monitor").

    Everything needed to answer "is the monitoring server itself
    healthy?" — exposed over ``GET /api/v1/server`` (and the legacy
    ``GET /api/server`` alias) and on the dashboard.
    """

    batches_ingested: int = 0
    packet_records_ingested: int = 0
    status_records_ingested: int = 0
    dedup_hits: int = 0
    foreign_records_rejected: int = 0
    decode_failures: int = 0
    batches_rejected: int = 0          # backpressure refusals (REJECT)
    batches_dropped: int = 0           # queue evictions (DROP_OLDEST)
    #: Batches refused because one network exhausted its queue quota
    #: while the global queue still had room (noisy-neighbour control).
    quota_rejections: int = 0
    queue_high_water: int = 0
    # The metrics object is owned by one MonitorServer, which serialises
    # every mutation (note_flush included) under its ingest lock.
    store_flushes: int = 0  # guarded-by: MonitorServer._lock
    flush_latency_last_s: float = 0.0  # guarded-by: MonitorServer._lock
    flush_latency_max_s: float = 0.0  # guarded-by: MonitorServer._lock
    flush_latency_total_s: float = 0.0  # guarded-by: MonitorServer._lock

    def note_flush(self, latency_s: float) -> None:
        self.store_flushes += 1
        self.flush_latency_last_s = latency_s
        self.flush_latency_max_s = max(self.flush_latency_max_s, latency_s)
        self.flush_latency_total_s += latency_s

    @property
    def records_ingested(self) -> int:
        return self.packet_records_ingested + self.status_records_ingested

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "batches_ingested": self.batches_ingested,
            "records_ingested": self.records_ingested,
            "packet_records_ingested": self.packet_records_ingested,
            "status_records_ingested": self.status_records_ingested,
            "dedup_hits": self.dedup_hits,
            "foreign_records_rejected": self.foreign_records_rejected,
            "decode_failures": self.decode_failures,
            "batches_rejected": self.batches_rejected,
            "batches_dropped": self.batches_dropped,
            "quota_rejections": self.quota_rejections,
            "queue_high_water": self.queue_high_water,
            "store_flushes": self.store_flushes,
            "flush_latency_last_ms": self.flush_latency_last_s * 1000.0,
            "flush_latency_max_ms": self.flush_latency_max_s * 1000.0,
            "flush_latency_total_ms": self.flush_latency_total_s * 1000.0,
        }


class SeqWindow:
    """Bounded per-node set of recently seen record sequence numbers.

    Sequence numbers are monotonically increasing per client, so keeping
    the recent window plus a low-water mark gives exact deduplication with
    bounded memory: anything at or below the mark has been seen.
    """

    def __init__(self, capacity: int = 65536) -> None:
        # Windows live inside a NetworkShard; the server's ingest lock
        # serialises check_and_add with every other shard mutation.
        self._capacity = capacity
        self._seen: Set[int] = set()  # guarded-by: MonitorServer._lock
        self._low_water = -1  # guarded-by: MonitorServer._lock

    def check_and_add(self, seq: int) -> bool:
        """Record ``seq``; return True when it is new."""
        if seq <= self._low_water or seq in self._seen:
            return False
        self._seen.add(seq)
        if len(self._seen) > self._capacity:
            # Advance the low-water mark past the densest prefix.
            ordered = sorted(self._seen)
            cut = len(ordered) // 2
            self._low_water = ordered[cut - 1]
            self._seen = set(ordered[cut:])
        return True
