"""The monitoring client that runs on every LoRa node.

Hooks the node's two observation points (every demodulated frame, every
physical transmission), turns them into :class:`PacketRecord` objects,
buffers them, and flushes a :class:`RecordBatch` to the server every
``report_interval_s`` — exactly the client the paper describes.

Reliability model:

* the buffer is bounded; overflow drops the **oldest** records and counts
  them, and the count ships with the next batch so the server can
  quantify observation loss;
* a batch that fails (uplink loss, no ack before the next interval) keeps
  its records, which are merged into the next batch under a fresh
  ``batch_seq`` but with their original record ``seq`` values — the server
  deduplicates on (node, seq), giving at-least-once delivery over the
  out-of-band uplink.

The consumer side of the push pipeline also lives here:
:class:`SseStreamClient` subscribes to a server's SSE stream routes and
iterates decoded :class:`~repro.monitor.stream.events.StreamEvent`
objects, reconnecting with ``Last-Event-ID`` so deltas missed during an
outage are replayed from the hub's ring.
"""

from __future__ import annotations

import itertools
import struct
import time
import urllib.error
import urllib.request
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Iterator, Optional

from repro.errors import ConfigurationError, DecodeError
from repro.mesh.node import MeshNode
from repro.mesh.packet import Packet, PacketType, crc16_ccitt
from repro.monitor.ingest import DEFAULT_NETWORK_ID, validate_network_id
from repro.monitor.records import (
    Direction,
    NeighborObservation,
    PacketRecord,
    RecordBatch,
    StatusRecord,
)
from repro.monitor.stream.events import StreamEvent, decode_event
from repro.monitor.stream.sse import DEFAULT_RETRY_MS, SseParser
from repro.monitor.uplink import Uplink
from repro.phy.channel import Reception
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class MonitorClientConfig:
    """Client tunables.

    Attributes:
        report_interval_s: how often a batch is flushed to the server.
        max_buffer_records: packet-record buffer bound; overflow drops the
            oldest records (counted and reported).
        max_records_per_batch: cap per shipment; a backlog drains over
            several intervals rather than producing one giant batch.
        include_status: attach a node-status snapshot to every batch.
        capture_telemetry_frames: also record TELEMETRY frames themselves.
            Off by default so the in-band uplink does not observe its own
            shipments into the next batch (meta-traffic).
        capture_in: record incoming frames.
        capture_out: record outgoing frames.
        packet_sample_rate: fraction of packets captured (1.0 =
            everything).  Constrained uplinks — the in-band mode in
            particular, where every telemetry byte costs LoRa airtime
            inside a 1 % duty-cycle budget — sample instead of reporting
            the full packet stream.  Sampling is **hash-consistent on the
            packet identity (src, packet_id)**: every node samples the
            same subset of packets, so correlation metrics (PDR, latency,
            route reconstruction) stay unbiased.  Independent per-observer
            sampling would bias observed PDR down by the sampling factor,
            because delivery needs the origin's OUT record *and* the
            destination's IN record of the same packet to survive.
            Status records are never sampled.
        start_jitter_s: spread the first flush of different nodes in time.
        network_id: mesh network this node reports under; batches are
            stamped with it so a multi-tenant server routes them to the
            right shard.  The default keeps single-network deployments
            on the legacy wire format.
    """

    report_interval_s: float = 60.0
    max_buffer_records: int = 2000
    max_records_per_batch: int = 400
    include_status: bool = True
    #: Attach a status snapshot to every Nth flush (1 = every flush).
    status_every_n_flushes: int = 1
    capture_telemetry_frames: bool = False
    capture_in: bool = True
    capture_out: bool = True
    packet_sample_rate: float = 1.0
    start_jitter_s: float = 5.0
    network_id: str = DEFAULT_NETWORK_ID

    def __post_init__(self) -> None:
        try:
            validate_network_id(self.network_id)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from None
        if self.report_interval_s <= 0:
            raise ConfigurationError(
                f"report_interval_s must be > 0, got {self.report_interval_s}"
            )
        if self.max_buffer_records < 1 or self.max_records_per_batch < 1:
            raise ConfigurationError("buffer and batch sizes must be >= 1")
        if not (0.0 <= self.packet_sample_rate <= 1.0):
            raise ConfigurationError(
                f"packet_sample_rate must be 0..1, got {self.packet_sample_rate}"
            )
        if self.status_every_n_flushes < 1:
            raise ConfigurationError(
                f"status_every_n_flushes must be >= 1, got {self.status_every_n_flushes}"
            )
        if self.start_jitter_s < 0:
            raise ConfigurationError(f"start_jitter_s must be >= 0, got {self.start_jitter_s}")


@dataclass
class ClientStats:
    """Client-side counters, read by the overhead experiments."""

    records_captured: int = 0
    records_dropped: int = 0
    status_snapshots: int = 0
    batches_sent: int = 0
    batches_acked: int = 0
    batches_failed: int = 0
    records_shipped: int = 0
    uplink_bytes: int = 0


class MonitorClient:
    """Per-node monitoring agent."""

    def __init__(
        self,
        sim: Simulator,
        node: MeshNode,
        uplink: Uplink,
        config: Optional[MonitorClientConfig] = None,
    ) -> None:
        self._sim = sim
        self.node = node
        self.uplink = uplink
        self.config = config or MonitorClientConfig()
        self.stats = ClientStats()
        self._buffer: Deque[PacketRecord] = deque()
        self._pending_status: Deque[StatusRecord] = deque()
        self._packet_seq = itertools.count(0)
        self._status_seq = itertools.count(0)
        self._batch_seq = itertools.count(0)
        self._dropped_since_last_batch = 0
        self._awaiting_result = False
        self._flush_count = 0
        self._stopped = False
        node.on_packet_in.append(self._packet_in)
        node.on_packet_out.append(self._packet_out)
        jitter = node._rng.uniform(0.0, self.config.start_jitter_s)
        self._timer = sim.call_every(
            self.config.report_interval_s,
            self.flush,
            start=sim.now + self.config.report_interval_s + jitter,
        )

    def stop(self) -> None:
        """Halt the client (node failure or shutdown)."""
        self._stopped = True
        self._timer.cancel()

    # -- capture -----------------------------------------------------------------

    def _wants(self, packet: Packet) -> bool:
        if self._stopped or self.node.failed:
            return False
        if not self.config.capture_telemetry_frames and packet.ptype in (
            PacketType.TELEMETRY, PacketType.APP_ACK,
        ):
            # Monitoring meta-traffic: recording our own shipments (and
            # their end-to-end acks) into the next batch feeds back.
            return False
        if self.config.packet_sample_rate < 1.0:
            if not self._sampled(packet):
                return False
        return True

    def _sampled(self, packet: Packet) -> bool:
        """Hash-consistent sampling decision for one packet identity."""
        key = struct.pack("!HH", packet.src, packet.packet_id)
        bucket = crc16_ccitt(key) / 65535.0
        return bucket < self.config.packet_sample_rate

    def _packet_in(self, now: float, packet: Packet, reception: Reception) -> None:
        if not self.config.capture_in or not self._wants(packet):
            return
        self._append(
            PacketRecord(
                node=self.node.address,
                seq=next(self._packet_seq),
                timestamp=now,
                direction=Direction.IN,
                src=packet.src,
                dst=packet.dst,
                next_hop=packet.next_hop,
                prev_hop=packet.prev_hop,
                ptype=int(packet.ptype),
                packet_id=packet.packet_id,
                size_bytes=packet.wire_size,
                rssi_dbm=reception.rssi_dbm,
                snr_db=reception.snr_db,
            )
        )

    def _packet_out(self, now: float, packet: Packet, airtime: float, attempt: int) -> None:
        if not self.config.capture_out or not self._wants(packet):
            return
        self._append(
            PacketRecord(
                node=self.node.address,
                seq=next(self._packet_seq),
                timestamp=now,
                direction=Direction.OUT,
                src=packet.src,
                dst=packet.dst,
                next_hop=packet.next_hop,
                prev_hop=packet.prev_hop,
                ptype=int(packet.ptype),
                packet_id=packet.packet_id,
                size_bytes=packet.wire_size,
                airtime_s=airtime,
                attempt=attempt,
            )
        )

    def _append(self, record: PacketRecord) -> None:
        self.stats.records_captured += 1
        self._buffer.append(record)
        while len(self._buffer) > self.config.max_buffer_records:
            self._buffer.popleft()
            self.stats.records_dropped += 1
            self._dropped_since_last_batch += 1

    def _snapshot_status(self) -> StatusRecord:
        status = self.node.status()
        neighbors = tuple(
            NeighborObservation(
                address=neighbor.address,
                rssi_dbm=neighbor.rssi_ewma_dbm,
                snr_db=neighbor.snr_ewma_db,
                frames_heard=neighbor.frames_heard,
            )
            for neighbor in (
                self.node.neighbors.get(addr) for addr in self.node.neighbors.addresses()
            )
            if neighbor is not None
        )
        self.stats.status_snapshots += 1
        return StatusRecord(
            node=self.node.address,
            seq=next(self._status_seq),
            timestamp=self._sim.now,
            uptime_s=status["uptime_s"],
            queue_depth=int(status["queue_depth"]),
            route_count=int(status["route_count"]),
            neighbor_count=int(status["neighbor_count"]),
            battery_v=status["battery_v"],
            tx_frames=int(status["tx_frames"]),
            tx_airtime_s=status["tx_airtime_s"],
            retransmissions=int(status["retransmissions"]),
            drops=int(status["drops"]),
            duty_utilisation=status["duty_utilisation"],
            originated=int(status["originated"]),
            delivered=int(status["delivered"]),
            forwarded=int(status["forwarded"]),
            neighbors=neighbors,
        )

    # -- shipping -----------------------------------------------------------------

    @property
    def backlog(self) -> int:
        """Records buffered and waiting for a successful flush."""
        return len(self._buffer)

    def flush(self) -> None:
        """Build and ship one batch now (normally timer-driven)."""
        if self._stopped or self.node.failed:
            return
        if self._awaiting_result:
            # Previous shipment still in flight; let its result (or the next
            # interval after it resolves) drive the retry.
            return
        self._flush_count += 1
        if self.config.include_status and (
            (self._flush_count - 1) % self.config.status_every_n_flushes == 0
        ):
            self._pending_status.append(self._snapshot_status())
        if not self._buffer and not self._pending_status:
            return
        take = min(len(self._buffer), self.config.max_records_per_batch)
        packet_records = tuple(self._buffer[index] for index in range(take))
        status_records = tuple(self._pending_status)
        batch = RecordBatch(
            node=self.node.address,
            batch_seq=next(self._batch_seq),
            sent_at=self._sim.now,
            packet_records=packet_records,
            status_records=status_records,
            dropped_records=self._dropped_since_last_batch,
            network_id=self.config.network_id,
        )
        self._awaiting_result = True
        self.stats.batches_sent += 1

        def on_result(ok: bool) -> None:
            self._awaiting_result = False
            if ok:
                self.stats.batches_acked += 1
                self.stats.records_shipped += batch.record_count
                self._dropped_since_last_batch = 0
                # Remove by seq, not by count: buffer overflow during the
                # flight may already have evicted some of the shipped records.
                if packet_records:
                    last_seq = packet_records[-1].seq
                    while self._buffer and self._buffer[0].seq <= last_seq:
                        self._buffer.popleft()
                if status_records:
                    last_status_seq = status_records[-1].seq
                    while self._pending_status and self._pending_status[0].seq <= last_status_seq:
                        self._pending_status.popleft()
            else:
                self.stats.batches_failed += 1
                # Records stay buffered; the next interval retries them
                # under a new batch_seq with the same record seqs.

        self.stats.uplink_bytes += self.uplink.wire_size(batch)
        self.uplink.send(batch, on_result)


class SseStreamClient:
    """Iterator of decoded stream events from a server's SSE routes.

    Connects to ``GET /api/v1/stream`` (the fleet topic) or
    ``GET /api/v1/networks/<id>/stream`` and yields
    :class:`~repro.monitor.stream.events.StreamEvent` objects as the
    server pushes them.  On connection loss it reconnects with the
    ``Last-Event-ID`` header set to the last delivered event id, so the
    server's replay ring fills the gap; the server's ``retry:`` hint
    (when seen) overrides the reconnect delay.

    Comment heartbeats and frames that do not decode as
    ``repro.stream/1`` events are skipped silently — forward
    compatibility is the consumer's job per the schema contract.

    Not thread-safe: one client, one iterating thread.
    """

    def __init__(
        self,
        base_url: str,
        network_id: Optional[str] = None,
        timeout_s: float = 30.0,
        limit: Optional[int] = None,
        heartbeat_s: Optional[float] = None,
        max_reconnects: Optional[int] = None,
        last_event_id: Optional[int] = None,
    ) -> None:
        """Args:
            base_url: server root, e.g. ``http://127.0.0.1:8080``.
            network_id: subscribe to this network's topic; None means
                the fleet topic.
            timeout_s: socket read timeout; must exceed the server's
                heartbeat period or quiet topics look like dead peers.
            limit: ask the server to close the stream after this many
                events (the bounded mode tests use); the iterator ends
                rather than reconnecting once it is reached.
            heartbeat_s: override the server's heartbeat period.
            max_reconnects: give up after this many failed reconnect
                attempts (None = keep trying until :meth:`close`).
            last_event_id: resume cursor for the *first* connect —
                replays everything after it from the server's ring.
        """
        if network_id is not None:
            try:
                validate_network_id(network_id)
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from None
        if timeout_s <= 0:
            raise ConfigurationError(f"timeout_s must be > 0, got {timeout_s}")
        self.base_url = base_url.rstrip("/")
        self.network_id = network_id
        self._timeout = timeout_s
        self._limit = limit
        self._heartbeat_s = heartbeat_s
        self._max_reconnects = max_reconnects
        #: The resume cursor: last event id delivered to the iterator.
        self.last_event_id = last_event_id
        #: Server reconnect-delay hint (ms), once one has been seen.
        self.retry_ms: Optional[int] = None
        self.events_received = 0
        self.reconnects = 0
        self._closed = False

    @property
    def url(self) -> str:
        if self.network_id is None:
            path = "/api/v1/stream"
        else:
            path = f"/api/v1/networks/{self.network_id}/stream"
        params = []
        if self._heartbeat_s is not None:
            params.append(f"heartbeat={self._heartbeat_s}")
        if self._limit is not None:
            params.append(f"limit={self._limit}")
        query = "?" + "&".join(params) if params else ""
        return f"{self.base_url}{path}{query}"

    def close(self) -> None:
        """Stop the iterator at the next frame/reconnect boundary."""
        self._closed = True

    def _connect(self) -> Any:
        headers = {"Accept": "text/event-stream"}
        if self.last_event_id is not None:
            headers["Last-Event-ID"] = str(self.last_event_id)
        request = urllib.request.Request(self.url, headers=headers)
        return urllib.request.urlopen(request, timeout=self._timeout)

    def _reconnect_delay_s(self) -> float:
        return (self.retry_ms if self.retry_ms is not None else DEFAULT_RETRY_MS) / 1000.0

    def events(self) -> Iterator[StreamEvent]:
        """Yield decoded events until closed, limit reached, or given up."""
        failures = 0
        while not self._closed:
            try:
                response = self._connect()
            except (urllib.error.URLError, OSError):
                failures += 1
                if self._max_reconnects is not None and failures > self._max_reconnects:
                    return
                self.reconnects += 1
                time.sleep(self._reconnect_delay_s())
                continue
            failures = 0
            parser = SseParser()
            try:
                with response:
                    for line in response:
                        if self._closed:
                            return
                        message = parser.feed(line)
                        if parser.retry_ms is not None:
                            self.retry_ms = parser.retry_ms
                        if message is None:
                            continue
                        try:
                            event = decode_event(message.data)
                        except DecodeError:
                            continue  # not a repro.stream/1 payload; skip
                        self.last_event_id = event.event_id
                        self.events_received += 1
                        yield event
                        if self._limit is not None and self.events_received >= self._limit:
                            return
            except (urllib.error.URLError, OSError):
                pass  # dropped mid-stream; fall through to reconnect
            if self._closed:
                return
            if self._limit is not None and self.events_received >= self._limit:
                return
            # Clean end-of-stream (server shutdown or proxy cut): resume
            # from the cursor after the server's suggested delay.
            self.reconnects += 1
            time.sleep(self._reconnect_delay_s())

    def __iter__(self) -> Iterator[StreamEvent]:
        return self.events()
