"""Thread-safe pub/sub fan-out for the push pipeline.

One :class:`StreamHub` hangs off the :class:`MonitorServer`.  The
server's ingest path *publishes* delta events onto per-network topics
(and the fleet topic); HTTP handler threads *subscribe* and pump the
events into SSE responses.

Backpressure
------------

Every subscriber owns a bounded queue.  A subscriber that cannot keep
up does not slow ingest down and does not grow memory: the hub drops
that subscriber's **oldest** queued event to admit the new one and
counts the drop (per subscriber and hub-wide, surfaced in the server
self-metrics).  A client that observes a gap in event ids knows it
lagged and can re-snapshot via the regular GET routes.

Resume
------

The hub keeps a bounded replay ring per topic.  A reconnecting client
presents the last event id it saw (SSE ``Last-Event-ID``) and the hub
replays every newer event still in the ring; events older than the
ring are gone — again, re-snapshot and carry on.

Lock order (the PR-7 contract)
------------------------------

The hub is a **leaf**: it never calls the server, a store or a
subscriber-blocking operation while holding its lock.  The server may
publish while holding its own lock (``MonitorServer._lock`` →
``StreamHub._lock`` is the sanctioned order); the reverse direction
does not exist.  Subscriber queues are ``queue.Queue`` objects that
synchronise themselves, so consumers block in ``get(timeout=...)``
without holding any hub or subscription lock.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.monitor.stream.events import StreamEvent

#: Default bound on one subscriber's queue (events, not bytes).
DEFAULT_QUEUE_SIZE = 256

#: Default bound on one topic's replay ring.
DEFAULT_RING_SIZE = 256


class StreamSubscription:
    """One consumer's bounded view of a set of topics.

    Created by :meth:`StreamHub.subscribe`; consumed from exactly one
    thread via :meth:`get`.  The hub side offers events (dropping the
    oldest on overflow); the consumer side blocks in ``queue.Queue``
    — never under a lock.
    """

    def __init__(self, topics: Tuple[str, ...], queue_size: int) -> None:
        if queue_size < 1:
            raise ConfigurationError(f"queue_size must be >= 1, got {queue_size}")
        self.topics = topics
        self.queue_size = queue_size
        self._lock = threading.Lock()
        #: ``queue.Queue`` serialises itself on its own internal mutex;
        #: ``None`` is the close sentinel.
        self._events: "queue.Queue[Optional[StreamEvent]]" = queue.Queue(  # guarded-by: queue.Queue.mutex
            maxsize=queue_size
        )
        self._closed = False  # guarded-by: _lock
        #: Events handed to the consumer.
        self.received = 0  # guarded-by: _lock
        #: Events evicted because the consumer lagged.
        self.dropped = 0  # guarded-by: _lock

    # -- hub side (called with StreamHub._lock held) ---------------------------

    def _wants(self, topic: str) -> bool:
        return topic in self.topics

    def _offer(self, event: Optional[StreamEvent]) -> int:
        """Enqueue ``event``, evicting the oldest on overflow.

        Returns the number of events dropped (0 or 1 per call, in
        practice).  Non-blocking by construction: only ``*_nowait``
        queue operations, so it is safe under the hub lock.
        """
        dropped = 0
        while True:
            try:
                self._events.put_nowait(event)
                break
            except queue.Full:
                try:
                    evicted = self._events.get_nowait()
                except queue.Empty:
                    continue  # raced with the consumer; retry the put
                if evicted is not None:
                    dropped += 1
        if dropped:
            with self._lock:
                self.dropped += dropped
        return dropped

    # -- consumer side ---------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[StreamEvent]:
        """Next event, or None on timeout or once the subscription closed.

        ``timeout=None`` (the default) blocks until an event or the
        close sentinel arrives — the conventional queue meaning; a
        finite timeout bounds the wait, and :meth:`get_nowait` polls.
        A None return is either timeout or closure — distinguish via
        :attr:`closed`.  The wait happens inside ``queue.Queue`` — no
        hub or subscription lock is held while blocked.
        """
        with self._lock:
            if self._closed:
                return None
        try:
            item = self._events.get(timeout=timeout)
        except queue.Empty:
            return None
        return self._receive(item)

    def get_nowait(self) -> Optional[StreamEvent]:
        """Next already-queued event, or None immediately (polling)."""
        with self._lock:
            if self._closed:
                return None
        try:
            item = self._events.get_nowait()
        except queue.Empty:
            return None
        return self._receive(item)

    def _receive(self, item: Optional[StreamEvent]) -> Optional[StreamEvent]:
        if item is None:  # close sentinel
            with self._lock:
                self._closed = True
            return None
        with self._lock:
            self.received += 1
        return item

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Mark closed and wake a blocked :meth:`get` (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._offer(None)

    def stats(self) -> Dict[str, Any]:
        """Lag/drop accounting for this subscriber."""
        with self._lock:
            received = self.received
            dropped = self.dropped
            closed = self._closed
        return {
            "topics": list(self.topics),
            "queued": self._events.qsize(),
            "queue_size": self.queue_size,
            "received": received,
            "dropped": dropped,
            "closed": closed,
        }


class StreamHub:
    """Publish/subscribe fan-out with bounded queues and a replay ring."""

    def __init__(
        self,
        ring_size: int = DEFAULT_RING_SIZE,
        default_queue_size: int = DEFAULT_QUEUE_SIZE,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if ring_size < 1:
            raise ConfigurationError(f"ring_size must be >= 1, got {ring_size}")
        if default_queue_size < 1:
            raise ConfigurationError(
                f"default_queue_size must be >= 1, got {default_queue_size}"
            )
        self.ring_size = ring_size
        self.default_queue_size = default_queue_size
        self._clock = clock or (lambda: 0.0)
        self._lock = threading.Lock()
        self._subscribers: List[StreamSubscription] = []  # guarded-by: _lock
        #: Next event id per topic (ids start at 1; 0 = "from the start").
        self._next_ids: Dict[str, int] = {}  # guarded-by: _lock
        self._rings: Dict[str, Deque[StreamEvent]] = {}  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self.events_published = 0  # guarded-by: _lock
        self.events_dropped = 0  # guarded-by: _lock
        self.events_replayed = 0  # guarded-by: _lock
        self.resumes = 0  # guarded-by: _lock
        self.subscribers_peak = 0  # guarded-by: _lock

    # -- publishing ------------------------------------------------------------

    def publish(
        self,
        topic: str,
        type: str,  # noqa: A002 - mirrors the event field name
        data: Mapping[str, Any],
        at: Optional[float] = None,
    ) -> Optional[StreamEvent]:
        """Publish one event; returns it (id assigned), or None when closed.

        Everything under the hub lock is O(bookkeeping): id assignment,
        ring append, non-blocking queue offers.  The hub never calls
        back into the server here (lock-order contract).
        """
        stamped_at = self._clock() if at is None else at
        with self._lock:
            if self._closed:
                return None
            event_id = self._next_ids.get(topic, 0) + 1
            self._next_ids[topic] = event_id
            event = StreamEvent(
                topic=topic, event_id=event_id, type=type, at=stamped_at, data=data
            )
            ring = self._rings.get(topic)
            if ring is None:
                ring = deque(maxlen=self.ring_size)
                self._rings[topic] = ring
            ring.append(event)
            self.events_published += 1
            dropped = 0
            for subscription in self._subscribers:
                if subscription._wants(topic):
                    dropped += subscription._offer(event)
            self.events_dropped += dropped
        return event

    # -- subscriptions ---------------------------------------------------------

    def subscribe(
        self,
        topics: Iterable[str],
        last_event_ids: Optional[Mapping[str, int]] = None,
        queue_size: Optional[int] = None,
    ) -> StreamSubscription:
        """Register a consumer for ``topics``.

        ``last_event_ids`` maps topic -> last event id the consumer saw;
        newer events still in that topic's replay ring are queued before
        any live event, so a reconnect resumes seamlessly (or with a
        visible id gap when the ring already evicted some).
        """
        subscription = StreamSubscription(
            topics=tuple(topics),
            queue_size=queue_size if queue_size is not None else self.default_queue_size,
        )
        with self._lock:
            if self._closed:
                subscription._offer(None)
                return subscription
            if last_event_ids:
                resumed = False
                for topic in subscription.topics:
                    last_seen = last_event_ids.get(topic)
                    if last_seen is None:
                        continue
                    resumed = True
                    for event in self._rings.get(topic, ()):
                        if event.event_id > last_seen:
                            subscription._offer(event)
                            self.events_replayed += 1
                if resumed:
                    self.resumes += 1
            self._subscribers.append(subscription)
            if len(self._subscribers) > self.subscribers_peak:
                self.subscribers_peak = len(self._subscribers)
        return subscription

    def unsubscribe(self, subscription: StreamSubscription) -> None:
        """Deregister and close ``subscription`` (idempotent)."""
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass
        subscription.close()

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def last_event_id(self, topic: str) -> int:
        """Highest event id published on ``topic`` (0 before any)."""
        with self._lock:
            return self._next_ids.get(topic, 0)

    def close(self) -> None:
        """Refuse new events and wake every subscriber (idempotent)."""
        with self._lock:
            self._closed = True
            subscribers, self._subscribers = self._subscribers, []
        for subscription in subscribers:
            subscription.close()

    # -- observability ----------------------------------------------------------

    def stats_document(self) -> Dict[str, Any]:
        """Hub counters + per-subscriber lag/drop accounting.

        Subscriber stats are collected *outside* the hub lock — the
        subscriptions lock themselves, mirroring how the server collects
        transport documents.
        """
        with self._lock:
            subscribers = list(self._subscribers)
            document: Dict[str, Any] = {
                "topics": len(self._next_ids),
                "subscribers": len(subscribers),
                "subscribers_peak": self.subscribers_peak,
                "events_published": self.events_published,
                "events_dropped": self.events_dropped,
                "events_replayed": self.events_replayed,
                "resumes": self.resumes,
                "ring_size": self.ring_size,
            }
        stats = [subscription.stats() for subscription in subscribers]
        document["queue_lag_max"] = max((s["queued"] for s in stats), default=0)
        document["subscriber_stats"] = stats
        return document
