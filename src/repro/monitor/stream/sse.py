"""Server-Sent-Events framing for the stream routes.

SSE (the ``text/event-stream`` media type) is the simplest push channel
a stdlib HTTP server can speak: a long-lived response whose body is a
sequence of UTF-8 frames::

    retry: 2000\\n\\n            # client reconnect delay hint
    : keep-alive\\n\\n            # comment heartbeat (ignored by parsers)
    event: ingest-delta\\n       # event type
    id: 17\\n                    # Last-Event-ID resume cursor
    data: {...}\\n\\n             # payload line(s)

This module is transport-shaped only: :func:`format_event` /
:func:`format_comment` / :func:`format_retry` render frames,
:class:`SseParser` is the incremental line parser the client uses, and
:func:`pump` is the handler-thread loop that moves events from a
:class:`~repro.monitor.stream.hub.StreamSubscription` into a socket
file, emitting comment heartbeats while the topic is quiet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator, List, Optional, Union

from repro.errors import ConfigurationError
from repro.monitor.stream.events import StreamEvent, encode_event
from repro.monitor.stream.hub import StreamSubscription

#: Reconnect delay hint sent at the top of every stream response.
DEFAULT_RETRY_MS = 2000

#: Heartbeat comment period while a topic is quiet.
DEFAULT_HEARTBEAT_S = 15.0


@dataclass(frozen=True)
class SseMessage:
    """One parsed wire frame (client side)."""

    event: str
    id: Optional[str]
    data: str


def format_event(event: StreamEvent) -> bytes:
    """One SSE frame for ``event``: event/id/data lines + blank line."""
    return (
        f"event: {event.type}\nid: {event.event_id}\ndata: {encode_event(event)}\n\n"
    ).encode("utf-8")


def format_comment(text: str = "keep-alive") -> bytes:
    """A comment frame — parsers skip it; it only keeps the socket warm."""
    return f": {text}\n\n".encode("utf-8")


def format_retry(retry_ms: int) -> bytes:
    """The ``retry:`` frame telling clients how long to wait before reconnecting."""
    return f"retry: {retry_ms}\n\n".encode("utf-8")


class SseParser:
    """Incremental SSE frame parser (feed lines, collect messages).

    Follows the WHATWG dispatch rules for the fields this pipeline
    uses: ``data:`` lines accumulate (joined with newlines), ``event:``
    and ``id:`` set the pending frame's metadata, a blank line
    dispatches, comments and unknown fields are ignored.  ``retry:`` is
    captured into :attr:`retry_ms` for the client's reconnect delay.
    """

    def __init__(self) -> None:
        self._data: List[str] = []
        self._event: str = "message"
        self._id: Optional[str] = None
        self.retry_ms: Optional[int] = None
        #: Last dispatched frame id (the reconnect cursor).
        self.last_event_id: Optional[str] = None

    def feed(self, line: Union[str, bytes]) -> Optional[SseMessage]:
        """Feed one line (trailing newline optional); a frame when complete."""
        if isinstance(line, bytes):
            line = line.decode("utf-8", errors="replace")
        line = line.rstrip("\r\n")
        if not line:
            return self._dispatch()
        if line.startswith(":"):
            return None  # comment (heartbeat)
        field, _, value = line.partition(":")
        if value.startswith(" "):
            value = value[1:]
        if field == "data":
            self._data.append(value)
        elif field == "event":
            self._event = value
        elif field == "id":
            self._id = value
        elif field == "retry":
            try:
                self.retry_ms = int(value)
            except ValueError:
                pass  # spec: ignore non-integer retry values
        return None

    def _dispatch(self) -> Optional[SseMessage]:
        if not self._data and self._event == "message" and self._id is None:
            return None  # blank line with nothing pending (e.g. after a comment)
        message = SseMessage(
            event=self._event, id=self._id, data="\n".join(self._data)
        )
        if self._id is not None:
            self.last_event_id = self._id
        self._data = []
        self._event = "message"
        self._id = None
        return message


def parse_sse(lines: Iterable[Union[str, bytes]]) -> Iterator[SseMessage]:
    """Parse a whole SSE byte/line stream into messages (tests, clients)."""
    parser = SseParser()
    for line in lines:
        message = parser.feed(line)
        if message is not None:
            yield message
    tail = parser.feed("")  # dispatch a frame missing its trailing blank line
    if tail is not None:
        yield tail


def pump(
    subscription: StreamSubscription,
    wfile: BinaryIO,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    limit: Optional[int] = None,
    retry_ms: int = DEFAULT_RETRY_MS,
) -> int:
    """Move events from ``subscription`` into ``wfile`` as SSE frames.

    Runs on the HTTP handler thread until the subscription closes, the
    peer disconnects, or ``limit`` events were written (the bounded mode
    CI and tests use).  While the topic is quiet a comment heartbeat
    goes out every ``heartbeat_s`` so proxies and clients can tell a
    slow topic from a dead server.  Returns the number of *events*
    (not heartbeats) written.

    The wait happens inside ``subscription.get`` — no lock is held, so
    a slow or stalled client never backs anything up beyond its own
    bounded queue.
    """
    if heartbeat_s <= 0:
        raise ConfigurationError(f"heartbeat_s must be > 0, got {heartbeat_s}")
    written = 0
    try:
        wfile.write(format_retry(retry_ms))
        wfile.flush()
        while limit is None or written < limit:
            event = subscription.get(timeout=heartbeat_s)
            if event is None:
                if subscription.closed:
                    break
                wfile.write(format_comment())
                wfile.flush()
                continue
            wfile.write(format_event(event))
            wfile.flush()
            written += 1
    except (BrokenPipeError, ConnectionResetError, OSError):
        pass  # peer went away; the subscription is cleaned up by the caller
    return written
