"""Live push pipeline: delta events from ingest to connected clients.

The polling dashboard asks the server "what is the state now?"; this
package inverts that into "tell me what just changed".  Three layers:

* :mod:`repro.monitor.stream.events` — the versioned ``repro.stream/1``
  delta-event schema and its canonical JSON encoding;
* :mod:`repro.monitor.stream.hub` — the thread-safe pub/sub fan-out
  (:class:`StreamHub`) with bounded per-subscriber queues, lag/drop
  accounting and a bounded replay ring for ``Last-Event-ID`` resume;
* :mod:`repro.monitor.stream.sse` — Server-Sent-Events framing for the
  ``GET /api/v1/stream`` and ``GET /api/v1/networks/<id>/stream``
  routes.

The server publishes onto the hub at ingest time; HTTP handler threads
subscribe and pump frames; browsers consume them with ``EventSource``
and :class:`repro.monitor.client.SseStreamClient` consumes them from
scripts.  See docs/STREAMING.md for the contract.
"""

from repro.monitor.stream.events import (
    FLEET_TOPIC,
    STREAM_SCHEMA,
    StreamEvent,
    decode_event,
    encode_event,
    network_topic,
)
from repro.monitor.stream.hub import StreamHub, StreamSubscription

__all__ = [
    "STREAM_SCHEMA",
    "FLEET_TOPIC",
    "network_topic",
    "StreamEvent",
    "encode_event",
    "decode_event",
    "StreamHub",
    "StreamSubscription",
]
