"""The versioned delta-event schema carried by the push pipeline.

Every event the monitoring server pushes — over SSE today, any future
transport tomorrow — is a :class:`StreamEvent`: a *topic* (one mesh
network, or the fleet), a per-topic monotonic *event id* (what
``Last-Event-ID`` resume is keyed on), a *type* naming the kind of
delta, the server clock it happened at, and a JSON-object payload.

The wire encoding is canonical JSON (sorted keys, no whitespace), so a
given event has exactly one byte representation — replayed events after
a reconnect are byte-identical to the original delivery, and tests can
compare frames directly.

Schema version
--------------

``repro.stream/1`` covers five event types:

=================  ======================================================
``ingest-delta``   One accepted batch: node, accepted/duplicate counts,
                   cumulative shard counters.
``rollup-update``  A rollup bucket changed: interval, bucket start,
                   count/mean/min/max after the change.
``alert-raised``   An alert condition began firing.
``alert-cleared``  A previously raised condition stopped firing.
``fleet-tile``     A network's fleet tile changed (published on both the
                   network topic and the fleet topic).
=================  ======================================================

Consumers must ignore event types they do not know: additions are
backwards-compatible within ``repro.stream/1``; changing or removing a
field bumps the version.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Union

from repro.errors import DecodeError

#: Version tag stamped into every encoded event.
STREAM_SCHEMA = "repro.stream/1"

#: Topic carrying fleet-level events (tile changes across all networks).
FLEET_TOPIC = "fleet"

#: The event types of schema version 1.
EVENT_TYPES = frozenset(
    {
        "ingest-delta",
        "rollup-update",
        "alert-raised",
        "alert-cleared",
        "fleet-tile",
    }
)


def network_topic(network_id: str) -> str:
    """The per-network topic name for ``network_id``."""
    return f"network:{network_id}"


@dataclass(frozen=True)
class StreamEvent:
    """One delta event on one topic.

    Attributes:
        topic: ``fleet`` or ``network:<id>``.
        event_id: monotonic per-topic sequence number assigned by the
            hub at publish time; the ``Last-Event-ID`` resume cursor.
        type: event kind (one of :data:`EVENT_TYPES`).
        at: server clock when the delta happened.
        data: JSON-object payload; shape depends on ``type``.
    """

    topic: str
    event_id: int
    type: str
    at: float
    data: Mapping[str, Any]

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": STREAM_SCHEMA,
            "topic": self.topic,
            "id": self.event_id,
            "type": self.type,
            "at": self.at,
            "data": dict(self.data),
        }


def encode_event(event: StreamEvent) -> str:
    """Canonical JSON encoding: sorted keys, no whitespace.

    One event, one byte representation — replays are byte-identical.
    """
    return json.dumps(
        event.to_json_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def decode_event(payload: Union[str, bytes]) -> StreamEvent:
    """Parse one encoded event; raises :class:`DecodeError` on anything off."""
    if isinstance(payload, bytes):
        try:
            payload = payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"stream event is not UTF-8: {exc}") from None
    try:
        document = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise DecodeError(f"stream event is not JSON: {exc}") from None
    if not isinstance(document, dict):
        raise DecodeError("stream event must be a JSON object")
    schema = document.get("schema")
    if schema != STREAM_SCHEMA:
        raise DecodeError(f"unsupported stream schema {schema!r} (want {STREAM_SCHEMA!r})")
    try:
        event = StreamEvent(
            topic=str(document["topic"]),
            event_id=int(document["id"]),
            type=str(document["type"]),
            at=float(document["at"]),
            data=document["data"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DecodeError(f"malformed stream event: {exc!r}") from None
    if not isinstance(event.data, dict):
        raise DecodeError("stream event 'data' must be a JSON object")
    return event
