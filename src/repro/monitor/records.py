"""Telemetry record schema.

The paper's client "periodically sends to a server detailed information
about the node's in- and outgoing LoRa packets".  Two record kinds carry
that information:

* :class:`PacketRecord` — one observation of one frame at one node, either
  ``IN`` (every frame the radio demodulated, including frames addressed to
  other nodes — the medium is broadcast) or ``OUT`` (every physical
  transmission, including retransmissions, with its airtime);
* :class:`StatusRecord` — a periodic snapshot of node health (uptime,
  queue, tables, battery, counters, duty-cycle utilisation) plus the
  node's neighbor view with link-quality EWMAs, which is what lets the
  server reconstruct the network topology.

Records travel in a :class:`RecordBatch` with two encodings:

* **JSON** for the out-of-band (WiFi/HTTP) uplink — the paper's path;
* a compact **binary** encoding for the in-band uplink, where every byte
  costs LoRa airtime.  Experiment T1 reports both sizes.

Each record carries a client-assigned ``seq``; together with the node
address it identifies the record globally, so at-least-once batch retries
deduplicate cleanly at the server.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import DecodeError, EncodeError
from repro.monitor.ingest import (
    DEFAULT_NETWORK_ID,
    is_valid_network_id,
    validate_network_id,
)

SCHEMA_VERSION = 1

_BATCH_MAGIC = 0x4C4D  # "LM"


class Direction(str, Enum):
    """Which side of the radio a packet observation comes from."""

    IN = "in"
    OUT = "out"


def _clamp(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))


@dataclass(frozen=True)
class PacketRecord:
    """One packet observation at one node.

    Attributes:
        node: observer address.
        seq: client-assigned sequence number (dedup key with ``node``).
        timestamp: observation time in seconds.
        direction: IN or OUT.
        src/dst: end-to-end addresses from the mesh header.
        next_hop/prev_hop: link-layer addresses from the mesh header.
        ptype: numeric packet type.
        packet_id: origin-assigned packet id (correlates observations of
            the same packet across nodes).
        size_bytes: frame size on the air.
        rssi_dbm/snr_db: reception quality (IN records only).
        airtime_s: frame airtime (OUT records only).
        attempt: transmission attempt number, 1 = first try (OUT only).
    """

    node: int
    seq: int
    timestamp: float
    direction: Direction
    src: int
    dst: int
    next_hop: int
    prev_hop: int
    ptype: int
    packet_id: int
    size_bytes: int
    rssi_dbm: Optional[float] = None
    snr_db: Optional[float] = None
    airtime_s: Optional[float] = None
    attempt: int = 1

    _BINARY_FORMAT = "!BHIHHHHBHHhhHB"
    _STRUCT = struct.Struct(_BINARY_FORMAT)
    BINARY_SIZE = _STRUCT.size

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-friendly dict (omits fields that do not apply)."""
        data: Dict[str, Any] = {
            "kind": "packet",
            "node": self.node,
            "seq": self.seq,
            "ts": round(self.timestamp, 3),
            "dir": self.direction.value,
            "src": self.src,
            "dst": self.dst,
            "next_hop": self.next_hop,
            "prev_hop": self.prev_hop,
            "ptype": self.ptype,
            "packet_id": self.packet_id,
            "size": self.size_bytes,
        }
        if self.direction is Direction.IN:
            data["rssi"] = round(self.rssi_dbm, 1) if self.rssi_dbm is not None else None
            data["snr"] = round(self.snr_db, 1) if self.snr_db is not None else None
        else:
            data["airtime_ms"] = round((self.airtime_s or 0.0) * 1000, 2)
            data["attempt"] = self.attempt
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "PacketRecord":
        try:
            direction = Direction(data["dir"])
            return cls(
                node=int(data["node"]),
                seq=int(data["seq"]),
                timestamp=float(data["ts"]),
                direction=direction,
                src=int(data["src"]),
                dst=int(data["dst"]),
                next_hop=int(data["next_hop"]),
                prev_hop=int(data["prev_hop"]),
                ptype=int(data["ptype"]),
                packet_id=int(data["packet_id"]),
                size_bytes=int(data["size"]),
                rssi_dbm=data.get("rssi"),
                snr_db=data.get("snr"),
                airtime_s=(data.get("airtime_ms") or 0.0) / 1000 if direction is Direction.OUT else None,
                attempt=int(data.get("attempt", 1)),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise DecodeError(f"bad packet record: {exc}") from exc

    def to_binary(self) -> bytes:
        """Compact fixed-size encoding for the in-band uplink.

        The clamps are spelled as branches (taken only for out-of-range
        values) rather than ``_clamp`` calls: the multi-process front
        transcodes every incoming batch through this method, so the
        per-record cost is what the codec benchmark table measures.
        """
        rssi_tenths = round((self.rssi_dbm or 0.0) * 10)
        if rssi_tenths < -32768:
            rssi_tenths = -32768
        elif rssi_tenths > 32767:
            rssi_tenths = 32767
        snr_tenths = round((self.snr_db or 0.0) * 10)
        if snr_tenths < -32768:
            snr_tenths = -32768
        elif snr_tenths > 32767:
            snr_tenths = 32767
        airtime_ms = round((self.airtime_s or 0.0) * 1000)
        if airtime_ms < 0:
            airtime_ms = 0
        elif airtime_ms > 0xFFFF:
            airtime_ms = 0xFFFF
        ts_cs = round(self.timestamp * 100)
        if ts_cs < 0:
            ts_cs = 0
        elif ts_cs > 0xFFFFFFFF:
            ts_cs = 0xFFFFFFFF
        size_bytes = self.size_bytes
        if size_bytes < 0:
            size_bytes = 0
        elif size_bytes > 0xFFFF:
            size_bytes = 0xFFFF
        attempt = self.attempt
        if attempt < 0:
            attempt = 0
        elif attempt > 0xFF:
            attempt = 0xFF
        return self._STRUCT.pack(
            0 if self.direction is Direction.IN else 1,
            self.seq & 0xFFFF,
            ts_cs,
            self.src,
            self.dst,
            self.next_hop,
            self.prev_hop,
            self.ptype,
            self.packet_id,
            size_bytes,
            rssi_tenths,
            snr_tenths,
            airtime_ms,
            attempt,
        )

    @classmethod
    def from_binary_at(cls, raw: bytes, offset: int, node: int) -> "PacketRecord":
        """Decode one record at ``offset`` without slicing the buffer.

        Builds the (frozen) instance by assigning ``__dict__`` directly:
        the dataclass ``__init__`` costs one ``object.__setattr__`` per
        field, which dominates batch decoding.  There is no
        ``__post_init__`` to skip.
        """
        try:
            (
                flags, seq, ts_cs, src, dst, next_hop, prev_hop, ptype,
                packet_id, size_bytes, rssi_tenths, snr_tenths, airtime_ms, attempt,
            ) = cls._STRUCT.unpack_from(raw, offset)
        except struct.error as exc:
            raise DecodeError(
                f"bad binary packet record of {len(raw) - offset} bytes"
            ) from exc
        record = object.__new__(cls)
        if flags & 1:
            object.__setattr__(record, "__dict__", {
                "node": node, "seq": seq, "timestamp": ts_cs / 100.0,
                "direction": Direction.OUT, "src": src, "dst": dst,
                "next_hop": next_hop, "prev_hop": prev_hop, "ptype": ptype,
                "packet_id": packet_id, "size_bytes": size_bytes,
                "rssi_dbm": None, "snr_db": None,
                "airtime_s": airtime_ms / 1000.0, "attempt": attempt,
            })
        else:
            object.__setattr__(record, "__dict__", {
                "node": node, "seq": seq, "timestamp": ts_cs / 100.0,
                "direction": Direction.IN, "src": src, "dst": dst,
                "next_hop": next_hop, "prev_hop": prev_hop, "ptype": ptype,
                "packet_id": packet_id, "size_bytes": size_bytes,
                "rssi_dbm": rssi_tenths / 10.0, "snr_db": snr_tenths / 10.0,
                "airtime_s": None, "attempt": attempt,
            })
        return record

    @classmethod
    def from_binary(cls, raw: bytes, node: int) -> "PacketRecord":
        if len(raw) != cls.BINARY_SIZE:
            raise DecodeError(f"bad binary packet record of {len(raw)} bytes")
        return cls.from_binary_at(raw, 0, node)


@dataclass(frozen=True)
class NeighborObservation:
    """One neighbor-table entry shipped inside a status record."""

    address: int
    rssi_dbm: float
    snr_db: float
    frames_heard: int

    _BINARY_FORMAT = "!HhhH"
    BINARY_SIZE = struct.calcsize(_BINARY_FORMAT)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "addr": self.address,
            "rssi": round(self.rssi_dbm, 1),
            "snr": round(self.snr_db, 1),
            "heard": self.frames_heard,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "NeighborObservation":
        try:
            return cls(
                address=int(data["addr"]),
                rssi_dbm=float(data["rssi"]),
                snr_db=float(data["snr"]),
                frames_heard=int(data["heard"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise DecodeError(f"bad neighbor observation: {exc}") from exc

    def to_binary(self) -> bytes:
        return struct.pack(
            self._BINARY_FORMAT,
            self.address,
            _clamp(int(round(self.rssi_dbm * 10)), -32768, 32767),
            _clamp(int(round(self.snr_db * 10)), -32768, 32767),
            _clamp(self.frames_heard, 0, 0xFFFF),
        )

    @classmethod
    def from_binary(cls, raw: bytes) -> "NeighborObservation":
        try:
            address, rssi_tenths, snr_tenths, heard = struct.unpack(cls._BINARY_FORMAT, raw)
        except struct.error as exc:
            raise DecodeError(f"bad binary neighbor observation") from exc
        return cls(address=address, rssi_dbm=rssi_tenths / 10.0, snr_db=snr_tenths / 10.0, frames_heard=heard)


@dataclass(frozen=True)
class StatusRecord:
    """Periodic node-health snapshot."""

    node: int
    seq: int
    timestamp: float
    uptime_s: float
    queue_depth: int
    route_count: int
    neighbor_count: int
    battery_v: float
    tx_frames: int
    tx_airtime_s: float
    retransmissions: int
    drops: int
    duty_utilisation: float
    originated: int
    delivered: int
    forwarded: int
    neighbors: Tuple[NeighborObservation, ...] = ()

    _BINARY_FORMAT = "!HIIBBBHIIHHHIIIB"
    BINARY_HEADER_SIZE = struct.calcsize(_BINARY_FORMAT)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "kind": "status",
            "node": self.node,
            "seq": self.seq,
            "ts": round(self.timestamp, 3),
            "uptime_s": round(self.uptime_s, 1),
            "queue": self.queue_depth,
            "routes": self.route_count,
            "neighbors_n": self.neighbor_count,
            "battery_v": round(self.battery_v, 2),
            "tx_frames": self.tx_frames,
            "tx_airtime_s": round(self.tx_airtime_s, 4),
            "retx": self.retransmissions,
            "drops": self.drops,
            "duty": round(self.duty_utilisation, 4),
            "originated": self.originated,
            "delivered": self.delivered,
            "forwarded": self.forwarded,
            "neighbors": [n.to_json_dict() for n in self.neighbors],
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "StatusRecord":
        try:
            return cls(
                node=int(data["node"]),
                seq=int(data["seq"]),
                timestamp=float(data["ts"]),
                uptime_s=float(data["uptime_s"]),
                queue_depth=int(data["queue"]),
                route_count=int(data["routes"]),
                neighbor_count=int(data["neighbors_n"]),
                battery_v=float(data["battery_v"]),
                tx_frames=int(data["tx_frames"]),
                tx_airtime_s=float(data["tx_airtime_s"]),
                retransmissions=int(data["retx"]),
                drops=int(data["drops"]),
                duty_utilisation=float(data["duty"]),
                originated=int(data["originated"]),
                delivered=int(data["delivered"]),
                forwarded=int(data["forwarded"]),
                neighbors=tuple(
                    NeighborObservation.from_json_dict(item) for item in data.get("neighbors", [])
                ),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise DecodeError(f"bad status record: {exc}") from exc

    def to_binary(self) -> bytes:
        if len(self.neighbors) > 0xFF:
            raise EncodeError(f"{len(self.neighbors)} neighbors exceed binary limit 255")
        header = struct.pack(
            self._BINARY_FORMAT,
            self.seq & 0xFFFF,
            _clamp(int(round(self.timestamp * 100)), 0, 0xFFFFFFFF),
            _clamp(int(self.uptime_s), 0, 0xFFFFFFFF),
            _clamp(self.queue_depth, 0, 0xFF),
            _clamp(self.route_count, 0, 0xFF),
            _clamp(self.neighbor_count, 0, 0xFF),
            _clamp(int(round(self.battery_v * 100)), 0, 0xFFFF),
            _clamp(self.tx_frames, 0, 0xFFFFFFFF),
            _clamp(int(round(self.tx_airtime_s * 1000)), 0, 0xFFFFFFFF),
            _clamp(self.retransmissions, 0, 0xFFFF),
            _clamp(self.drops, 0, 0xFFFF),
            _clamp(int(round(self.duty_utilisation * 1000)), 0, 0xFFFF),
            _clamp(self.originated, 0, 0xFFFFFFFF),
            _clamp(self.delivered, 0, 0xFFFFFFFF),
            _clamp(self.forwarded, 0, 0xFFFFFFFF),
            len(self.neighbors),
        )
        return header + b"".join(n.to_binary() for n in self.neighbors)

    @classmethod
    def from_binary(cls, raw: bytes, node: int) -> Tuple["StatusRecord", int]:
        """Decode from ``raw``; returns (record, bytes_consumed)."""
        if len(raw) < cls.BINARY_HEADER_SIZE:
            raise DecodeError(f"status record header truncated ({len(raw)} bytes)")
        (
            seq, ts_cs, uptime, queue, routes, neigh_count, battery_cv,
            tx_frames, tx_airtime_ms, retx, drops, duty_permille,
            originated, delivered, forwarded, n_neighbors,
        ) = struct.unpack(cls._BINARY_FORMAT, raw[:cls.BINARY_HEADER_SIZE])
        offset = cls.BINARY_HEADER_SIZE
        need = offset + n_neighbors * NeighborObservation.BINARY_SIZE
        if len(raw) < need:
            raise DecodeError("status record neighbor list truncated")
        neighbors = []
        for _ in range(n_neighbors):
            neighbors.append(
                NeighborObservation.from_binary(raw[offset:offset + NeighborObservation.BINARY_SIZE])
            )
            offset += NeighborObservation.BINARY_SIZE
        record = cls(
            node=node,
            seq=seq,
            timestamp=ts_cs / 100.0,
            uptime_s=float(uptime),
            queue_depth=queue,
            route_count=routes,
            neighbor_count=neigh_count,
            battery_v=battery_cv / 100.0,
            tx_frames=tx_frames,
            tx_airtime_s=tx_airtime_ms / 1000.0,
            retransmissions=retx,
            drops=drops,
            duty_utilisation=duty_permille / 1000.0,
            originated=originated,
            delivered=delivered,
            forwarded=forwarded,
            neighbors=tuple(neighbors),
        )
        return record, offset


@dataclass(frozen=True)
class RecordBatch:
    """One client-to-server shipment."""

    node: int
    batch_seq: int
    sent_at: float
    packet_records: Tuple[PacketRecord, ...] = ()
    status_records: Tuple[StatusRecord, ...] = ()
    schema_version: int = SCHEMA_VERSION
    #: Packet records the client dropped because its buffer overflowed
    #: before this batch (lets the server quantify observation loss).
    dropped_records: int = 0
    #: Mesh network this batch belongs to.  Single-network deployments
    #: leave the default; the server routes each batch to its network's
    #: shard.  The JSON wire format only carries the key for non-default
    #: networks, so legacy bodies stay byte-identical.
    network_id: str = DEFAULT_NETWORK_ID

    def __post_init__(self) -> None:
        validate_network_id(self.network_id)

    @property
    def record_count(self) -> int:
        return len(self.packet_records) + len(self.status_records)

    def to_json_bytes(self) -> bytes:
        """The out-of-band wire format (what the paper's client POSTs)."""
        document = {
            "v": self.schema_version,
            "node": self.node,
            "batch_seq": self.batch_seq,
            "sent_at": round(self.sent_at, 3),
            "dropped": self.dropped_records,
            "packets": [r.to_json_dict() for r in self.packet_records],
            "status": [r.to_json_dict() for r in self.status_records],
        }
        if self.network_id != DEFAULT_NETWORK_ID:
            document["net"] = self.network_id
        return json.dumps(document, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_json_bytes(cls, raw: bytes) -> "RecordBatch":
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DecodeError(f"batch is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise DecodeError("batch JSON is not an object")
        version = document.get("v")
        if version != SCHEMA_VERSION:
            raise DecodeError(f"unsupported schema version {version!r}")
        try:
            node = int(document["node"])
            batch_seq = int(document["batch_seq"])
            sent_at = float(document["sent_at"])
            dropped = int(document.get("dropped", 0))
            network_id = document.get("net", DEFAULT_NETWORK_ID)
            packets = tuple(
                PacketRecord.from_json_dict(item) for item in document.get("packets", [])
            )
            status = tuple(
                StatusRecord.from_json_dict(item) for item in document.get("status", [])
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise DecodeError(f"bad batch fields: {exc}") from exc
        if not isinstance(network_id, str) or not is_valid_network_id(network_id):
            raise DecodeError(f"bad network id {network_id!r}")
        return cls(
            node=node,
            batch_seq=batch_seq,
            sent_at=sent_at,
            packet_records=packets,
            status_records=status,
            dropped_records=dropped,
            network_id=network_id,
        )

    _BINARY_HEADER = "!HBHHIHHB"

    def to_binary(self) -> bytes:
        """Compact encoding for the in-band uplink."""
        if len(self.packet_records) > 0xFFFF or len(self.status_records) > 0xFF:
            raise EncodeError("too many records for a binary batch")
        header = struct.pack(
            self._BINARY_HEADER,
            _BATCH_MAGIC,
            self.schema_version,
            self.node,
            self.batch_seq & 0xFFFF,
            _clamp(int(round(self.sent_at * 100)), 0, 0xFFFFFFFF),
            _clamp(self.dropped_records, 0, 0xFFFF),
            len(self.packet_records),
            len(self.status_records),
        )
        parts = [header]
        parts.extend(record.to_binary() for record in self.packet_records)
        parts.extend(record.to_binary() for record in self.status_records)
        return b"".join(parts)

    @classmethod
    def from_binary(cls, raw: bytes) -> "RecordBatch":
        header_size = struct.calcsize(cls._BINARY_HEADER)
        if len(raw) < header_size:
            raise DecodeError(f"binary batch of {len(raw)} bytes is truncated")
        magic, version, node, batch_seq, sent_cs, dropped, n_packets, n_status = struct.unpack(
            cls._BINARY_HEADER, raw[:header_size]
        )
        if magic != _BATCH_MAGIC:
            raise DecodeError(f"bad batch magic 0x{magic:04X}")
        if version != SCHEMA_VERSION:
            raise DecodeError(f"unsupported schema version {version}")
        offset = header_size
        if len(raw) < offset + n_packets * PacketRecord.BINARY_SIZE:
            raise DecodeError("binary batch packet records truncated")
        packets: List[PacketRecord] = []
        for _ in range(n_packets):
            packets.append(PacketRecord.from_binary_at(raw, offset, node))
            offset += PacketRecord.BINARY_SIZE
        status: List[StatusRecord] = []
        for _ in range(n_status):
            record, consumed = StatusRecord.from_binary(raw[offset:], node=node)
            status.append(record)
            offset += consumed
        if offset != len(raw):
            raise DecodeError(f"{len(raw) - offset} trailing bytes after binary batch")
        return cls(
            node=node,
            batch_seq=batch_seq,
            sent_at=sent_cs / 100.0,
            packet_records=tuple(packets),
            status_records=tuple(status),
            dropped_records=dropped,
        )
