"""Rich HTML dashboard rendering.

Produces a self-contained HTML page (inline CSS + SVG) with the panels
the paper's dashboard shows: summary tiles, an SVG map of the
reconstructed topology, and the node / link / delivery / alert tables.
Served at ``GET /`` by the HTTP API; the plain-text variant remains
available at ``GET /text``.

Pages go live via the push pipeline: a small inline ``EventSource``
script subscribes to the server's SSE stream, patches the summary tiles
and alert list in place, and drives a visible live/stale connection
badge.  Without JavaScript the pages degrade gracefully — a
``<noscript>``-wrapped ``<meta http-equiv="refresh">`` keeps them
polling exactly as before, and the badge stays hidden.

Node positions on the map are computed server-side with a networkx
spring layout over the *reported* link graph — the server has no ground
truth coordinates, which is exactly the paper's situation.
"""

from __future__ import annotations

import html
import math
from typing import Any, Dict, List, Optional, Tuple

try:  # optional: nicer force-directed layout when available
    import networkx
except ImportError:  # pragma: no cover - exercised only without networkx
    networkx = None

from repro.monitor import metrics
from repro.monitor.dashboard import Dashboard
from repro.monitor.ingest import DEFAULT_NETWORK_ID

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; background: #101418;
       color: #d8dee4; margin: 0; padding: 1.2em 2em; }
h1 { font-size: 1.3em; font-weight: 600; }
h2 { font-size: 1.0em; margin: 1.4em 0 0.4em; color: #9fb0c0;
     text-transform: uppercase; letter-spacing: 0.08em; }
.tiles { display: flex; gap: 1em; flex-wrap: wrap; }
.tile { background: #1a2128; border: 1px solid #2a333d; border-radius: 8px;
        padding: 0.8em 1.2em; min-width: 9em; }
.tile .value { font-size: 1.7em; font-weight: 700; color: #7fd4a5; }
.tile .label { font-size: 0.75em; color: #8796a5; }
.tile.warn .value { color: #e8c268; }
.tile.bad .value { color: #e87a68; }
table { border-collapse: collapse; font-size: 0.85em; margin-top: 0.4em; }
th, td { padding: 0.3em 0.9em; text-align: left; }
th { color: #8796a5; border-bottom: 1px solid #2a333d; font-weight: 600; }
tr:nth-child(even) { background: #151b21; }
.alert { padding: 0.5em 0.9em; border-left: 3px solid #e87a68; margin: 0.3em 0;
         background: #1f1a19; font-size: 0.9em; }
.alert.warning { border-color: #e8c268; background: #1f1d16; }
svg { background: #0c1013; border: 1px solid #2a333d; border-radius: 8px; }
.muted { color: #5d6b79; }
.badge { font-size: 0.5em; font-weight: 600; vertical-align: middle;
         padding: 0.2em 0.7em; border-radius: 1em; border: 1px solid;
         margin-left: 0.6em; letter-spacing: 0.06em; }
.badge.live { color: #7fd4a5; border-color: #3d6b52; }
.badge.stale { color: #e8c268; border-color: #6b5c2f; }
"""

#: Poll period of the no-JavaScript fallback (inside ``<noscript>`` so
#: live pages are not also reloading underneath the SSE patcher).
_NOSCRIPT_REFRESH = '<noscript><meta http-equiv="refresh" content="10"></noscript>'

#: The connection badge; hidden until the EventSource script adopts it,
#: so no-JS readers never see a dangling "stale" indicator.
_BADGE = '<span id="live-badge" class="badge stale" hidden>connecting</span>'

_BADGE_JS = """
  var badge = document.getElementById("live-badge");
  if (!badge || typeof EventSource === "undefined") { return; }
  badge.hidden = false;
  function setBadge(state) { badge.className = "badge " + state; badge.textContent = state; }
  function payload(event) {
    try { return JSON.parse(event.data).data; } catch (error) { return null; }
  }
"""


def _live_script(stream_path: str, body: str) -> str:
    """The inline EventSource patcher for one page.

    ``body`` holds the page's event listeners; it can use ``source``,
    ``setBadge(state)`` and ``payload(event)``.  Heartbeat comments are
    invisible to ``EventSource``, so the badge is driven by the
    connection state callbacks: ``open`` → live, ``error`` → stale
    (the browser auto-reconnects per the server's ``retry:`` hint).
    """
    return (
        "<script>\n(function () {\n  \"use strict\";\n"
        + _BADGE_JS
        + f'  var source = new EventSource("{stream_path}");\n'
        + '  source.onopen = function () { setBadge("live"); };\n'
        + '  source.onerror = function () { setBadge("stale"); };\n'
        + body
        + "})();\n</script>"
    )


_NETWORK_LISTENERS = """
  function setLive(name, text) {
    var el = document.querySelector('[data-live="' + name + '"]');
    if (el) { el.textContent = text; }
  }
  source.addEventListener("fleet-tile", function (event) {
    var tile = payload(event);
    if (!tile) { return; }
    if (tile.health !== null) { setLive("health", tile.health.toFixed(0)); }
    if (tile.pdr !== null) { setLive("pdr", (100 * tile.pdr).toFixed(1) + "%"); }
  });
  source.addEventListener("alert-raised", function (event) {
    var alert = payload(event);
    var list = document.getElementById("alerts");
    if (!alert || !list) { return; }
    var key = alert.rule + ":" + alert.node;
    if (list.querySelector('[data-key="' + key + '"]')) { return; }
    var empty = document.getElementById("no-alerts");
    if (empty) { empty.remove(); }
    var div = document.createElement("div");
    div.className = "alert " + alert.severity;
    div.setAttribute("data-key", key);
    var target = alert.node === null ? "network" : "node " + alert.node;
    var rule = document.createElement("b");
    rule.textContent = alert.rule;
    div.appendChild(rule);
    div.appendChild(document.createTextNode(" — " + target + ": " + alert.message));
    list.appendChild(div);
  });
  source.addEventListener("alert-cleared", function (event) {
    var alert = payload(event);
    var list = document.getElementById("alerts");
    if (!alert || !list) { return; }
    var el = list.querySelector('[data-key="' + alert.rule + ":" + alert.node + '"]');
    if (el) { el.remove(); }
  });
"""

_FLEET_LISTENERS = """
  source.addEventListener("fleet-tile", function (event) {
    var tile = payload(event);
    if (!tile) { return; }
    var root = document.querySelector('[data-network="' + tile.network + '"]');
    if (!root) { return; }  // unknown network: appears on the next full load
    var value = root.querySelector(".value");
    if (value && tile.health !== null) { value.textContent = tile.health.toFixed(0); }
    var summary = root.querySelector('[data-live="summary"]');
    if (summary) {
      summary.textContent = tile.nodes + " nodes · " + tile.records_ingested + " records";
    }
  });
"""


def _health_class(score: float) -> str:
    if score is None or (isinstance(score, float) and math.isnan(score)):
        return "bad"
    if score >= 75:
        return ""
    if score >= 50:
        return "warn"
    return "bad"


def _layout(edges: List[Tuple[int, int]], nodes: List[int]) -> Dict[int, Tuple[float, float]]:
    """Positions in [0, 1]^2 for the reported graph.

    Uses a networkx spring layout when networkx is installed; otherwise
    falls back to an even circle (always readable, just less shapely).
    """
    if not nodes:
        return {}
    if networkx is None:  # pragma: no cover - exercised only without networkx
        count = len(nodes)
        return {
            node: (
                0.5 + 0.45 * math.cos(2 * math.pi * index / count),
                0.5 + 0.45 * math.sin(2 * math.pi * index / count),
            )
            for index, node in enumerate(sorted(nodes))
        }
    graph = networkx.Graph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    positions = networkx.spring_layout(graph, seed=7)
    xs = [p[0] for p in positions.values()]
    ys = [p[1] for p in positions.values()]
    span_x = (max(xs) - min(xs)) or 1.0
    span_y = (max(ys) - min(ys)) or 1.0
    return {
        node: ((x - min(xs)) / span_x, (y - min(ys)) / span_y)
        for node, (x, y) in positions.items()
    }


def _rssi_color(rssi_dbm: float) -> str:
    """Green (strong) -> amber -> red (marginal)."""
    if rssi_dbm >= -105:
        return "#5fae7f"
    if rssi_dbm >= -115:
        return "#e8c268"
    return "#e87a68"


def render_topology_svg(dashboard: Dashboard, width: int = 640, height: int = 420) -> str:
    """SVG map of the reported topology, colored by link RSSI."""
    links = metrics.link_quality(dashboard.store)
    nodes = dashboard.store.nodes()
    undirected = {}
    for (tx, rx), quality in links.items():
        key = (min(tx, rx), max(tx, rx))
        existing = undirected.get(key)
        if existing is None or quality.rssi_mean > existing:
            undirected[key] = quality.rssi_mean
    positions = _layout(list(undirected), nodes)
    margin = 36
    def sx(x: float) -> float:
        return margin + x * (width - 2 * margin)
    def sy(y: float) -> float:
        return margin + y * (height - 2 * margin)

    parts = [f'<svg width="{width}" height="{height}" xmlns="http://www.w3.org/2000/svg">']
    for (a, b), rssi in sorted(undirected.items()):
        if a not in positions or b not in positions:
            continue
        xa, ya = positions[a]
        xb, yb = positions[b]
        parts.append(
            f'<line x1="{sx(xa):.1f}" y1="{sy(ya):.1f}" x2="{sx(xb):.1f}" '
            f'y2="{sy(yb):.1f}" stroke="{_rssi_color(rssi)}" stroke-width="1.5" '
            f'opacity="0.7"><title>{a}&#8596;{b}: {rssi:.1f} dBm</title></line>'
        )
    for node in nodes:
        if node not in positions:
            continue
        x, y = positions[node]
        parts.append(
            f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="13" fill="#1f2933" '
            'stroke="#5d8aa8" stroke-width="1.5" />'
        )
        parts.append(
            f'<text x="{sx(x):.1f}" y="{sy(y) + 4:.1f}" text-anchor="middle" '
            'font-size="11" fill="#d8dee4" font-family="sans-serif">'
            f"{node}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def render_html(dashboard: Dashboard, now: float, network_id: Optional[str] = None) -> str:
    """Full self-contained HTML dashboard page.

    ``network_id`` labels the page when it renders one network of a
    multi-network server (the ``/networks/<id>`` view).
    """
    dashboard.alerts.evaluate(now)
    document = dashboard.to_json_dict(now)

    def fmt(value: Optional[float], suffix: str = "", digits: int = 1) -> str:
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return '<span class="muted">–</span>'
        return f"{value:.{digits}f}{suffix}"

    nodes = document["nodes"]
    online = sum(
        1 for row in nodes
        if row["last_seen_age_s"] is not None
        and row["last_seen_age_s"] < dashboard.report_interval_s * 3
    )
    health = document["network_health"]
    pdr = document["network_pdr"]
    health_tile_class = _health_class(health)
    pdr_percent = None if pdr is None or (isinstance(pdr, float) and math.isnan(pdr)) else pdr * 100

    label = "" if network_id is None else f" — network {html.escape(network_id)}"
    stream_network = network_id if network_id is not None else DEFAULT_NETWORK_ID
    stream_path = f"/api/v1/networks/{html.escape(stream_network)}/stream"
    sections = [
        "<!DOCTYPE html>",
        '<html><head><meta charset="utf-8">',
        _NOSCRIPT_REFRESH,
        "<title>LoRa mesh monitor</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>LoRa mesh monitor{label} <span class='muted'>t={now:.0f}s</span>{_BADGE}</h1>",
        '<div class="tiles">',
        f'<div class="tile {health_tile_class}">'
        f'<div class="value" data-live="health">{fmt(health, "", 0)}</div>'
        '<div class="label">network health / 100</div></div>',
        f'<div class="tile"><div class="value" data-live="pdr">{fmt(pdr_percent, "%", 1)}</div>'
        '<div class="label">packet delivery</div></div>',
        f'<div class="tile"><div class="value">{online}/{len(nodes)}</div>'
        '<div class="label">nodes reporting</div></div>',
        f'<div class="tile"><div class="value">{len(document["links"])}</div>'
        '<div class="label">radio links seen</div></div>',
        "</div>",
        "<h2>Topology (as reported)</h2>",
        render_topology_svg(dashboard),
    ]

    sections.append("<h2>Nodes</h2><table><tr><th>node</th><th>seen</th>"
                    "<th>battery</th><th>queue</th><th>routes</th>"
                    "<th>neighbors</th><th>duty</th><th>health</th></tr>")
    for row in nodes:
        duty = row["duty"]
        sections.append(
            "<tr>"
            f"<td>{row['node']}</td>"
            f"<td>{fmt(row['last_seen_age_s'], 's', 0)}</td>"
            f"<td>{fmt(row['battery_v'], ' V', 2)}</td>"
            f"<td>{row['queue'] if row['queue'] is not None else '–'}</td>"
            f"<td>{row['routes'] if row['routes'] is not None else '–'}</td>"
            f"<td>{row['neighbors'] if row['neighbors'] is not None else '–'}</td>"
            f"<td>{fmt(duty * 100 if duty is not None else None, '%', 1)}</td>"
            f"<td>{fmt(row['health'], '', 0)}</td>"
            "</tr>"
        )
    sections.append("</table>")

    sections.append("<h2>Delivery</h2><table><tr><th>src</th><th>dst</th>"
                    "<th>sent</th><th>delivered</th><th>PDR</th>"
                    "<th>latency (mean)</th></tr>")
    for row in document["delivery"]:
        row_pdr = row["pdr"]
        sections.append(
            "<tr>"
            f"<td>{row['src']}</td><td>{row['dst']}</td>"
            f"<td>{row['sent']}</td><td>{row['delivered']}</td>"
            f"<td>{fmt(row_pdr * 100 if row_pdr is not None else None, '%', 1)}</td>"
            f"<td>{fmt(row['latency_mean_s'], ' s', 2)}</td>"
            "</tr>"
        )
    sections.append("</table>")

    sections.append('<h2>Alerts</h2><div id="alerts">')
    alerts = document["alerts"]
    if not alerts:
        sections.append('<p class="muted" id="no-alerts">no active alerts</p>')
    for alert in alerts:
        target = f"node {alert['node']}" if alert["node"] is not None else "network"
        key = f"{alert['rule']}:{alert['node']}"
        sections.append(
            f'<div class="alert {html.escape(alert["severity"])}" data-key="{html.escape(key)}">'
            f"<b>{html.escape(alert['rule'])}</b> — {target}: "
            f"{html.escape(alert['message'])} "
            f'<span class="muted">since t={alert["raised_at"]:.0f}s</span></div>'
        )
    sections.append("</div>")

    server = document.get("server")
    if server is not None:
        sections.append("<h2>Server (self-metrics)</h2><table>"
                        "<tr><th>batches</th><th>records</th><th>dedup</th>"
                        "<th>decode err</th><th>rejected</th><th>dropped</th>"
                        "<th>queue</th><th>q hi-water</th><th>flushes</th>"
                        "<th>flush max</th></tr>")
        queue_depth = server["queue_depth"]
        capacity = server["queue_capacity"]
        queue = f"{queue_depth}/{capacity}" if capacity is not None else str(queue_depth)
        sections.append(
            "<tr>"
            f"<td>{server['batches_ingested']}</td>"
            f"<td>{server['records_ingested']}</td>"
            f"<td>{server['dedup_hits']}</td>"
            f"<td>{server['decode_failures']}</td>"
            f"<td>{server['batches_rejected']}</td>"
            f"<td>{server['batches_dropped']}</td>"
            f"<td>{queue}</td>"
            f"<td>{server['queue_high_water']}</td>"
            f"<td>{server['store_flushes']}</td>"
            f"<td>{fmt(server['flush_latency_max_ms'], ' ms', 2)}</td>"
            "</tr>"
        )
        sections.append("</table>")

    sections.append(_live_script(stream_path, _NETWORK_LISTENERS))
    sections.append("</body></html>")
    return "\n".join(sections)


def render_fleet_html(overview: Dict[str, Any]) -> str:
    """Fleet overview page: one tile per network, totals, triage list.

    ``overview`` is the document produced by
    :func:`repro.monitor.fleet.fleet_overview`.
    """
    now = float(overview["now"])
    tiles: List[Dict[str, Any]] = overview["networks"]
    totals: Dict[str, Any] = overview["totals"]
    unhealthy: List[Dict[str, Any]] = overview["top_unhealthy"]

    def fmt(value: Optional[float], suffix: str = "", digits: int = 1) -> str:
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return '<span class="muted">–</span>'
        return f"{float(value):.{digits}f}{suffix}"

    sections = [
        "<!DOCTYPE html>",
        '<html><head><meta charset="utf-8">',
        _NOSCRIPT_REFRESH,
        "<title>LoRa mesh monitor — fleet</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Fleet overview <span class='muted'>t={now:.0f}s</span>{_BADGE}</h1>",
        '<div class="tiles">',
        f'<div class="tile"><div class="value">{totals["networks"]}</div>'
        '<div class="label">networks</div></div>',
        f'<div class="tile"><div class="value">{totals["nodes"]}</div>'
        '<div class="label">nodes</div></div>',
        f'<div class="tile"><div class="value">{totals["batches_ingested"]}</div>'
        '<div class="label">batches ingested</div></div>',
        f'<div class="tile"><div class="value">{totals["records_ingested"]}</div>'
        '<div class="label">records ingested</div></div>',
        "</div>",
        "<h2>Networks</h2>",
        '<div class="tiles">',
    ]
    for tile in tiles:
        health = tile["health"]
        klass = _health_class(health if health is not None else math.nan)
        name = html.escape(str(tile["network"]))
        sections.append(
            f'<div class="tile {klass}" data-network="{name}">'
            f'<div class="value">{fmt(health, "", 0)}</div>'
            f'<div class="label"><a href="/networks/{name}" style="color:inherit">'
            f'{name}</a> · <span data-live="summary">{tile["nodes"]} nodes · '
            f"{tile['records_ingested']} records</span></div></div>"
        )
    sections.append("</div>")

    sections.append(
        "<h2>Most unhealthy</h2><table><tr><th>network</th><th>health</th>"
        "<th>PDR</th><th>nodes</th><th>last batch</th></tr>"
    )
    for tile in unhealthy:
        name = html.escape(str(tile["network"]))
        pdr = tile["pdr"]
        sections.append(
            "<tr>"
            f'<td><a href="/networks/{name}" style="color:inherit">{name}</a></td>'
            f"<td>{fmt(tile['health'], '', 0)}</td>"
            f"<td>{fmt(pdr * 100 if pdr is not None else None, '%', 1)}</td>"
            f"<td>{tile['nodes']}</td>"
            f"<td>{fmt(tile['last_batch_at'], 's', 0)}</td>"
            "</tr>"
        )
    sections.append("</table>")
    sections.append(_live_script("/api/v1/stream", _FLEET_LISTENERS))
    sections.append("</body></html>")
    return "\n".join(sections)
