"""Transport plumbing: the plugin interface and sequence-gap accounting.

UDP buys the ingest tier statelessness and throughput at the price of
silent loss.  The paper's monitoring goal makes silent loss
unacceptable — so the datagram path *accounts* for it instead: every
batch carries a client ``batch_seq``, and a per-(network, node)
:class:`SequenceGapTracker` classifies each arrival as in-order, a gap
(one or more batches missing), a late arrival that fills a known gap, a
duplicate, or a client restart.  The aggregated
:class:`TelemetryGapAccountant` is what ``GET /api/v1/server`` surfaces
under ``transports``, so an operator can tell "the mesh is quiet" from
"the monitor is deaf".
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Any, Dict, Set, Tuple


class IngestTransport(ABC):
    """One way for encoded record batches to reach the server."""

    #: Registry/display name (``udp``, ``http``, ``mpfront``).
    name: str = ""

    @abstractmethod
    def start(self) -> None:
        """Begin accepting traffic (bind sockets, spawn threads/processes)."""

    @abstractmethod
    def stop(self) -> None:
        """Stop accepting traffic and release resources (idempotent)."""

    @abstractmethod
    def stats_document(self) -> Dict[str, Any]:
        """Transport counters for the server self-metrics document."""


#: A batch_seq this far *behind* the stream's highest is a client
#: restart (or a 16-bit wrap), not a very late arrival.
RESTART_THRESHOLD = 0x8000

#: Bound on remembered missing seqs per stream; older gaps beyond it
#: stay counted as lost even if the datagram eventually limps in.
MAX_TRACKED_MISSING = 1024


class SequenceGapTracker:
    """Batch-sequence accounting for one (network, node) datagram stream.

    Counters:

    * ``received`` — datagrams noted (including duplicates).
    * ``gap_events`` — arrivals that skipped ahead, leaving a hole.
    * ``lost`` — seqs currently believed missing; a late arrival that
      fills a tracked hole decrements this again (and counts as
      ``reordered``).
    * ``duplicates`` — seqs seen twice.
    * ``restarts`` — stream rewinds beyond :data:`RESTART_THRESHOLD`
      (client reboot or 16-bit sequence wrap); state resets rather than
      charging the whole rewind as loss.
    """

    def __init__(self) -> None:
        # A tracker belongs to exactly one accountant, which serialises
        # every note() under its own lock — per-tracker locks would only
        # add overhead on the datagram fast path.
        self.received = 0  # guarded-by: TelemetryGapAccountant._lock
        self.gap_events = 0  # guarded-by: TelemetryGapAccountant._lock
        self.lost = 0  # guarded-by: TelemetryGapAccountant._lock
        self.duplicates = 0  # guarded-by: TelemetryGapAccountant._lock
        self.reordered = 0  # guarded-by: TelemetryGapAccountant._lock
        self.restarts = 0  # guarded-by: TelemetryGapAccountant._lock
        self._highest: int = -1  # guarded-by: TelemetryGapAccountant._lock
        self._missing: Set[int] = set()  # guarded-by: TelemetryGapAccountant._lock

    def note(self, seq: int) -> str:
        """Account one arrival; returns the classification."""
        self.received += 1
        if self._highest < 0:
            self._highest = seq
            return "first"
        if seq == self._highest + 1:
            self._highest = seq
            return "in_order"
        if seq > self._highest:
            width = seq - self._highest - 1
            self.gap_events += 1
            self.lost += width
            self._missing.update(range(self._highest + 1, seq))
            if len(self._missing) > MAX_TRACKED_MISSING:
                # Forget the oldest holes; they stay counted as lost.
                for stale in sorted(self._missing)[: len(self._missing) - MAX_TRACKED_MISSING]:
                    self._missing.discard(stale)
            self._highest = seq
            return "gap"
        if seq in self._missing:
            self._missing.discard(seq)
            self.lost -= 1
            self.reordered += 1
            return "late"
        if self._highest - seq > RESTART_THRESHOLD:
            self.restarts += 1
            self._highest = seq
            self._missing.clear()
            return "restart"
        self.duplicates += 1
        return "duplicate"

    def to_json_dict(self) -> Dict[str, int]:
        return {
            "received": self.received,
            "gap_events": self.gap_events,
            "lost": self.lost,
            "duplicates": self.duplicates,
            "reordered": self.reordered,
            "restarts": self.restarts,
        }


class TelemetryGapAccountant:
    """Gap trackers for every (network, node) stream a transport sees.

    Bounded like the network registry: beyond ``max_streams`` the
    least-recently-active stream's tracker is forgotten, so a storm of
    forged network ids cannot grow memory without bound.
    """

    def __init__(self, max_streams: int = 4096) -> None:
        self._max_streams = max_streams
        # Reentrant: note() -> tracker() nests.  One accountant may be
        # shared by several transports (UDP + mpfront), so the LRU dict
        # and every tracker's counters are mutated from many threads.
        self._lock = threading.RLock()
        self._trackers: "OrderedDict[Tuple[str, int], SequenceGapTracker]" = OrderedDict()  # guarded-by: _lock
        self.evicted_streams = 0  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._trackers)

    def tracker(self, network_id: str, node: int) -> SequenceGapTracker:
        """The (lazily created) tracker for one stream."""
        with self._lock:
            key = (network_id, node)
            tracker = self._trackers.get(key)
            if tracker is not None:
                self._trackers.move_to_end(key)
                return tracker
            while len(self._trackers) >= self._max_streams:
                self._trackers.popitem(last=False)
                self.evicted_streams += 1
            tracker = SequenceGapTracker()
            self._trackers[key] = tracker
            return tracker

    def note(self, network_id: str, node: int, seq: int) -> str:
        """Account one batch arrival on one stream.

        The whole lookup + classification runs under the accountant
        lock: tracker state transitions (gap bookkeeping, restart
        resets) are multi-step and must not interleave.
        """
        with self._lock:
            return self.tracker(network_id, node).note(seq)

    def total(self, counter: str) -> int:
        """Sum of one counter over every stream."""
        with self._lock:
            return sum(getattr(tracker, counter) for tracker in self._trackers.values())

    def to_json_dict(self, per_stream_limit: int = 20) -> Dict[str, Any]:
        """Aggregate totals plus the worst (highest-loss) streams."""
        with self._lock:
            worst = sorted(
                self._trackers.items(),
                key=lambda item: (item[1].lost, item[1].duplicates),
                reverse=True,
            )[:per_stream_limit]
            return {
                "streams": len(self._trackers),
                "evicted_streams": self.evicted_streams,
                "received": self.total("received"),
                "gap_events": self.total("gap_events"),
                "lost": self.total("lost"),
                "duplicates": self.total("duplicates"),
                "reordered": self.total("reordered"),
                "restarts": self.total("restarts"),
                "worst_streams": {
                    f"{network_id}/{node}": tracker.to_json_dict()
                    for (network_id, node), tracker in worst
                    if tracker.lost or tracker.duplicates or tracker.restarts
                },
            }
