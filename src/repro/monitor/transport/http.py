"""HTTP as a pluggable transport.

:class:`~repro.monitor.httpapi.MonitoringHttpServer` predates the
transport seam and remains the canonical HTTP implementation (routes,
legacy aliases, dashboards).  :class:`HttpIngestTransport` adapts it to
the :class:`~repro.monitor.transport.base.IngestTransport` interface so
the serve CLI and the self-metrics document treat HTTP and UDP
uniformly: one list of transports, each with ``start``/``stop`` and a
stats document.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.monitor.httpapi import MonitoringHttpServer
from repro.monitor.transport.base import IngestTransport


class HttpIngestTransport(IngestTransport):
    """Adapter presenting the HTTP server as an ingest transport."""

    name = "http"

    def __init__(self, http_server: MonitoringHttpServer) -> None:
        self.http_server = http_server
        self._started = False

    @property
    def url(self) -> str:
        return self.http_server.url

    def start(self) -> None:
        if not self._started:
            self.http_server.start()
            self._started = True

    def stop(self) -> None:
        if self._started:
            self.http_server.stop()
            self._started = False

    def stats_document(self) -> Dict[str, Any]:
        return {
            "transport": self.name,
            "url": self.http_server.url,
            "running": self._started,
        }
