"""UDP datagram ingest: the loss-tolerant fast path of the telemetry plane.

One datagram = one encoded :class:`~repro.monitor.records.RecordBatch`
(binary codec by default), in the TinyTelemetry shape: stateless,
self-contained, no replies, no connections.  A lost datagram loses only
its own records — and because every batch carries a ``batch_seq``, the
per-(network, node) gap accounting in
:class:`~repro.monitor.transport.base.TelemetryGapAccountant` turns
that loss into a number the fleet dashboard can show instead of a blind
spot.

Malformed datagrams (truncated header, bad magic, wrong version,
trailing garbage) are **counted and dropped, never raised**: a UDP
socket is an open door, and a crash on garbage would be a one-packet
denial of service.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import DecodeError
from repro.monitor.codec import Codec, resolve_codec
from repro.monitor.server import MonitorServer
from repro.monitor.transport.base import IngestTransport, TelemetryGapAccountant

#: Largest payload a single UDP datagram can carry (IPv4 maximum).
MAX_DATAGRAM_BYTES = 65507


class UdpIngestTransport(IngestTransport):
    """A datagram socket feeding decoded batches into a monitor server."""

    name = "udp"

    def __init__(
        self,
        server: MonitorServer,
        host: str = "127.0.0.1",
        port: int = 0,
        codec: Union[str, Codec] = "binary",
        recv_buffer_bytes: int = 1 << 20,
        accountant: Optional[TelemetryGapAccountant] = None,
    ) -> None:
        """Create (but do not start) the transport.

        Args:
            server: ingestion backend; datagram batches go through the
                same admission queue and dedup as every other path.
            host/port: bind address; port 0 picks a free port.
            codec: wire encoding of the datagrams (default ``binary``).
            recv_buffer_bytes: requested ``SO_RCVBUF`` — a deep kernel
                buffer is the first line of defence against bursts.
            accountant: sequence-gap accountant to share between
                transports (a private one is created when omitted).
        """
        self._server = server
        self._requested_address = (host, port)
        self._codec = resolve_codec(codec)
        self._recv_buffer_bytes = recv_buffer_bytes
        self.accountant = accountant if accountant is not None else TelemetryGapAccountant()
        self._socket: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._lock = threading.Lock()
        self.datagrams_received = 0
        self.bytes_received = 0
        self.malformed_datagrams = 0
        self.batches_submitted = 0
        self.batches_refused = 0

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) actually bound (after :meth:`start`)."""
        if self._socket is None:
            return self._requested_address
        bound = self._socket.getsockname()
        return bound[0], bound[1]

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> None:
        """Bind the socket and start the receive thread."""
        if self._running:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, self._recv_buffer_bytes)
        except OSError:
            pass  # the kernel caps SO_RCVBUF; the default still works
        sock.bind(self._requested_address)
        self._socket = sock
        self._running = True
        self._thread = threading.Thread(
            target=self._serve, name="udp-ingest", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Close the socket and join the receive thread (idempotent)."""
        self._running = False
        if self._socket is not None:
            self._socket.close()
            self._socket = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _serve(self) -> None:
        sock = self._socket
        while self._running and sock is not None:
            try:
                raw, _ = sock.recvfrom(MAX_DATAGRAM_BYTES)
            except OSError:
                break  # stop() closed the socket under us
            self.handle_datagram(raw)

    def handle_datagram(self, raw: bytes) -> bool:
        """Decode and submit one datagram; False when dropped.

        Exposed directly (not only via the socket thread) so tests and
        the multi-process front can drive the same accounting without a
        network round trip.
        """
        self.datagrams_received += 1
        self.bytes_received += len(raw)
        try:
            batch = self._codec.decode(raw)
        except DecodeError:
            self.malformed_datagrams += 1
            return False
        self.accountant.note(batch.network_id, batch.node, batch.batch_seq)
        with self._lock:
            result = self._server.submit(batch)
            if result.ok:
                shard = self._server.registry.get(batch.network_id)
                if shard is not None:
                    shard.datagram_batches += 1
        if not result.ok:
            # Backpressure refusal: UDP has no reply channel, so the
            # refusal is visible here and in the server self-metrics.
            self.batches_refused += 1
            return False
        self.batches_submitted += 1
        return True

    def stats_document(self) -> Dict[str, Any]:
        return {
            "transport": self.name,
            "codec": self._codec.name,
            "port": self.port,
            "datagrams_received": self.datagrams_received,
            "bytes_received": self.bytes_received,
            "malformed_datagrams": self.malformed_datagrams,
            "batches_submitted": self.batches_submitted,
            "batches_refused": self.batches_refused,
            "sequence": self.accountant.to_json_dict(),
        }
