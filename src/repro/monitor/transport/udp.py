"""UDP datagram ingest: the loss-tolerant fast path of the telemetry plane.

One datagram = one encoded :class:`~repro.monitor.records.RecordBatch`
(binary codec by default), in the TinyTelemetry shape: stateless,
self-contained, no replies, no connections.  A lost datagram loses only
its own records — and because every batch carries a ``batch_seq``, the
per-(network, node) gap accounting in
:class:`~repro.monitor.transport.base.TelemetryGapAccountant` turns
that loss into a number the fleet dashboard can show instead of a blind
spot.

Malformed datagrams (truncated header, bad magic, wrong version,
trailing garbage) are **counted and dropped, never raised**: a UDP
socket is an open door, and a crash on garbage would be a one-packet
denial of service.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import DecodeError
from repro.monitor.codec import Codec, resolve_codec
from repro.monitor.server import MonitorServer
from repro.monitor.transport.base import IngestTransport, TelemetryGapAccountant

#: Largest payload a single UDP datagram can carry (IPv4 maximum).
MAX_DATAGRAM_BYTES = 65507


class UdpIngestTransport(IngestTransport):
    """A datagram socket feeding decoded batches into a monitor server."""

    name = "udp"

    def __init__(
        self,
        server: MonitorServer,
        host: str = "127.0.0.1",
        port: int = 0,
        codec: Union[str, Codec] = "binary",
        recv_buffer_bytes: int = 1 << 20,
        accountant: Optional[TelemetryGapAccountant] = None,
    ) -> None:
        """Create (but do not start) the transport.

        Args:
            server: ingestion backend; datagram batches go through the
                same admission queue and dedup as every other path.
            host/port: bind address; port 0 picks a free port.
            codec: wire encoding of the datagrams (default ``binary``).
            recv_buffer_bytes: requested ``SO_RCVBUF`` — a deep kernel
                buffer is the first line of defence against bursts.
            accountant: sequence-gap accountant to share between
                transports (a private one is created when omitted).
        """
        self._server = server
        self._requested_address = (host, port)
        self._codec = resolve_codec(codec)
        self._recv_buffer_bytes = recv_buffer_bytes
        self.accountant = accountant if accountant is not None else TelemetryGapAccountant()
        self._lock = threading.Lock()
        self._socket: Optional[socket.socket] = None  # guarded-by: _lock
        self._thread: Optional[threading.Thread] = None  # guarded-by: _lock
        self._running = False  # guarded-by: _lock
        self.datagrams_received = 0  # guarded-by: _lock
        self.bytes_received = 0  # guarded-by: _lock
        self.malformed_datagrams = 0  # guarded-by: _lock
        self.batches_submitted = 0  # guarded-by: _lock
        self.batches_refused = 0  # guarded-by: _lock

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) actually bound (after :meth:`start`)."""
        with self._lock:
            sock = self._socket
        if sock is None:
            return self._requested_address
        bound = sock.getsockname()
        return bound[0], bound[1]

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> None:
        """Bind the socket and start the receive thread (idempotent)."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, self._recv_buffer_bytes)
        except OSError:
            pass  # the kernel caps SO_RCVBUF; the default still works
        with self._lock:
            if self._running:
                sock.close()  # racing second start(): first one won
                return
            sock.bind(self._requested_address)
            self._socket = sock
            self._running = True
            self._thread = threading.Thread(
                target=self._serve, args=(sock,), name="udp-ingest", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Close the socket and join the receive thread.

        Safe to call twice (and before :meth:`start`): the first caller
        swaps the socket and thread out under the lock, so a concurrent
        or repeated stop() finds nothing to do.  The join happens
        *outside* the lock — the receiver thread takes it in
        :meth:`handle_datagram`, so joining under it would deadlock
        (RL101).

        Raises:
            RuntimeError: when the receiver thread fails to exit within
                the timeout — a stuck shutdown should fail loudly, not
                leak a thread holding a bound port.
        """
        with self._lock:
            self._running = False
            sock, self._socket = self._socket, None
            thread, self._thread = self._thread, None
        if sock is not None and thread is not None:
            # Closing a socket does NOT reliably interrupt a recvfrom
            # already blocked in the kernel; a zero-byte datagram to
            # ourselves does, and the receive loop re-checks the stop
            # flag before handling it.
            self._wake(sock)
        if thread is not None:
            thread.join(timeout=2.0)
            if thread.is_alive() and sock is not None:
                sock.close()  # second interrupt attempt: recvfrom -> OSError
                thread.join(timeout=3.0)
        if sock is not None:
            sock.close()  # idempotent
        if thread is not None and thread.is_alive():
            raise RuntimeError(
                "udp-ingest receiver thread did not exit within 5s of stop()"
            )

    @staticmethod
    def _wake(sock: socket.socket) -> None:
        """Nudge a receiver blocked in recvfrom on ``sock``."""
        try:
            host, port = sock.getsockname()[:2]
            if host in ("0.0.0.0", "::"):
                host = "127.0.0.1"
            with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as probe:
                probe.sendto(b"", (host, port))
        except OSError:
            pass  # stop() falls back to closing the socket

    def _serve(self, sock: socket.socket) -> None:
        # Lock-free peek at the stop flag: a stale True costs one extra
        # recvfrom that stop()'s socket close interrupts anyway.
        while self._running:  # reprolint: allow[RL100] -- GIL-atomic bool read; stop() also closes the socket, which breaks recvfrom
            try:
                raw, _ = sock.recvfrom(MAX_DATAGRAM_BYTES)
            except OSError:
                break  # stop() closed the socket under us
            if not self._running:  # reprolint: allow[RL100] -- GIL-atomic bool read; the wake datagram from stop() must not be counted as traffic
                break
            self.handle_datagram(raw)

    def handle_datagram(self, raw: bytes) -> bool:
        """Decode and submit one datagram; False when dropped.

        Exposed directly (not only via the socket thread) so tests and
        the multi-process front can drive the same accounting without a
        network round trip.
        """
        with self._lock:
            self.datagrams_received += 1
            self.bytes_received += len(raw)
        try:
            # Decode outside the lock: pure CPU work on a private buffer.
            batch = self._codec.decode(raw)
        except DecodeError:
            with self._lock:
                self.malformed_datagrams += 1
            return False
        self.accountant.note(batch.network_id, batch.node, batch.batch_seq)
        # Submit WITHOUT holding the transport lock: the server takes its
        # own lock, and holding ours across the call would establish a
        # udp -> server lock order that deadlocks against the server's
        # server -> udp order in stats collection.
        result = self._server.submit(batch)
        if not result.ok:
            # Backpressure refusal: UDP has no reply channel, so the
            # refusal is visible here and in the server self-metrics.
            with self._lock:
                self.batches_refused += 1
            return False
        self._server.note_datagram_batch(batch.network_id)
        with self._lock:
            self.batches_submitted += 1
        return True

    def stats_document(self) -> Dict[str, Any]:
        port = self.port
        with self._lock:
            return {
                "transport": self.name,
                "codec": self._codec.name,
                "port": port,
                "datagrams_received": self.datagrams_received,
                "bytes_received": self.bytes_received,
                "malformed_datagrams": self.malformed_datagrams,
                "batches_submitted": self.batches_submitted,
                "batches_refused": self.batches_refused,
                "sequence": self.accountant.to_json_dict(),
            }
