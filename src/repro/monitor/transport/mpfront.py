"""Multi-process ingest front: batch decoding that scales with cores.

BENCH_fleet.json shows where the threaded ingest plateaus: JSON decode
dominates the per-batch cost and the GIL serialises it, so 8 shards
sustain barely more than one shard's rate.  The front moves the decode
off the hot path: worker *processes* parse incoming wire bytes and
re-encode them in the compact binary telemetry format, and the parent
merely binary-decodes (cheap, fixed-offset ``struct`` reads) and
submits into the :class:`~repro.monitor.server.MonitorServer`, which
serialises shard mutations under its own ingest lock.

The process boundary uses the binary codec rather than pickle both for
speed and because it keeps the wire format honest: whatever crosses is
exactly what PROTOCOL.md specifies, which also means fields are
quantised to the protocol's binary resolution (centisecond timestamps,
tenth-dB link quality) like any batch that travelled as a datagram.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
from typing import Any, Dict, List, Optional, Union

from repro.errors import DecodeError
from repro.monitor.codec import Codec, resolve_codec
from repro.monitor.ingest import IngestResult
from repro.monitor.server import MonitorServer
from repro.monitor.transport.base import IngestTransport

#: Sentinel telling a worker to exit.
_STOP = b""


def _decode_worker(
    in_queue: "multiprocessing.Queue[bytes]",
    out_queue: "multiprocessing.Queue[Any]",
    codec_name: str,
) -> None:
    """Worker loop: wire bytes in, binary-transcoded batches (or errors) out."""
    codec = resolve_codec(codec_name)
    binary = resolve_codec("binary")
    while True:
        raw = in_queue.get()
        if raw == _STOP:
            break
        try:
            batch = codec.decode(raw)
        except DecodeError as exc:
            out_queue.put((False, str(exc)))
            continue
        out_queue.put((True, binary.encode(batch)))


class MultiProcessIngestFront(IngestTransport):
    """Decode workers in separate processes feeding one monitor server."""

    name = "mpfront"

    def __init__(
        self,
        server: MonitorServer,
        workers: Optional[int] = None,
        codec: Union[str, Codec] = "json",
    ) -> None:
        """Create (but do not start) the front.

        Args:
            server: ingestion backend; only the parent process touches it.
            workers: decode processes (default: every core but one).
            codec: encoding of the *incoming* wire bytes.
        """
        self._server = server
        self.workers = workers if workers is not None else max(1, (os.cpu_count() or 2) - 1)
        self._codec = resolve_codec(codec)
        self._binary = resolve_codec("binary")
        # submit_encoded()/collect()/flush() are transport callbacks any
        # thread may drive; queue handles and counters are shared state.
        self._lock = threading.Lock()
        self._processes: List[multiprocessing.Process] = []  # guarded-by: _lock
        self._in_queue: Optional["multiprocessing.Queue[bytes]"] = None  # guarded-by: _lock
        self._out_queue: Optional["multiprocessing.Queue[Any]"] = None  # guarded-by: _lock
        self._pending = 0  # guarded-by: _lock
        self.batches_submitted = 0  # guarded-by: _lock
        self.batches_ingested = 0  # guarded-by: _lock
        self.decode_failures = 0  # guarded-by: _lock

    def start(self) -> None:
        """Spawn the worker processes (idempotent)."""
        with self._lock:
            if self._processes:
                return
            self._in_queue = multiprocessing.Queue()
            self._out_queue = multiprocessing.Queue()
            for _ in range(self.workers):
                process = multiprocessing.Process(
                    target=_decode_worker,
                    args=(self._in_queue, self._out_queue, self._codec.name),
                    daemon=True,
                )
                process.start()
                self._processes.append(process)

    def submit_encoded(self, raw: bytes) -> None:
        """Hand one encoded batch to the decode pool (non-blocking)."""
        with self._lock:
            in_queue = self._in_queue
        if in_queue is None:
            raise RuntimeError("MultiProcessIngestFront is not started")
        # The queue put (which may block on a full pipe) stays outside
        # the lock; multiprocessing queues are thread-safe themselves.
        in_queue.put(raw)
        with self._lock:
            self._pending += 1
            self.batches_submitted += 1

    @property
    def pending(self) -> int:
        """Batches handed to the pool whose results were not collected yet."""
        with self._lock:
            return self._pending

    def collect(self, timeout_s: Optional[float] = None) -> List[IngestResult]:
        """Ingest every decoded batch currently available.

        Blocks up to ``timeout_s`` for the *first* result (0/None = only
        what is already there), then drains without blocking.
        """
        results: List[IngestResult] = []
        with self._lock:
            out = self._out_queue
        if out is None:
            return results
        block = timeout_s is not None and timeout_s > 0
        while True:
            with self._lock:
                if not self._pending:
                    break
            try:
                # Blocking get outside the lock (RL101): a worker needs
                # milliseconds to decode; serialising other collectors
                # behind that wait would defeat the pool.
                ok, payload = out.get(block=block, timeout=timeout_s if block else None)
            except queue_mod.Empty:
                break
            block = False  # only the first get waits
            with self._lock:
                self._pending -= 1
                if not ok:
                    self.decode_failures += 1
            if not ok:
                results.append(IngestResult(ok=False, error=payload))
                continue
            batch = self._binary.decode(payload)
            result = self._server.submit(batch)
            if result.ok:
                with self._lock:
                    self.batches_ingested += 1
            results.append(result)
        return results

    def flush(self, timeout_s: float = 30.0) -> List[IngestResult]:
        """Collect until nothing is pending (or ``timeout_s`` elapses)."""
        results: List[IngestResult] = []
        while True:
            with self._lock:
                if not self._pending:
                    break
            got = self.collect(timeout_s=timeout_s)
            if not got:
                break
            results.extend(got)
        return results

    def stop(self) -> None:
        """Flush outstanding work, then terminate the workers (idempotent).

        The sentinel puts and the joins run outside the lock: a worker
        draining the in-queue, or a concurrent collect(), must not find
        the lock held by a stop() that is itself waiting on them.
        """
        with self._lock:
            if not self._processes:
                return
        self.flush()
        with self._lock:
            processes, self._processes = self._processes, []
            in_queue, self._in_queue = self._in_queue, None
            out_queue, self._out_queue = self._out_queue, None
            self._pending = 0
        if in_queue is None:
            return  # a concurrent stop() got here first
        for _ in processes:
            in_queue.put(_STOP)
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        in_queue.close()
        if out_queue is not None:
            out_queue.close()

    def stats_document(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "transport": self.name,
                "codec": self._codec.name,
                "workers": self.workers,
                "running": bool(self._processes),
                "batches_submitted": self.batches_submitted,
                "batches_ingested": self.batches_ingested,
                "decode_failures": self.decode_failures,
                "pending": self._pending,
            }
