"""Multi-process ingest front: batch decoding that scales with cores.

BENCH_fleet.json shows where the threaded ingest plateaus: JSON decode
dominates the per-batch cost and the GIL serialises it, so 8 shards
sustain barely more than one shard's rate.  The front moves the decode
off the hot path: worker *processes* parse incoming wire bytes and
re-encode them in the compact binary telemetry format, and the parent
merely binary-decodes (cheap, fixed-offset ``struct`` reads) and
submits into the :class:`~repro.monitor.server.MonitorServer`, which
stays single-writer — dedup windows and stores need no locks.

The process boundary uses the binary codec rather than pickle both for
speed and because it keeps the wire format honest: whatever crosses is
exactly what PROTOCOL.md specifies, which also means fields are
quantised to the protocol's binary resolution (centisecond timestamps,
tenth-dB link quality) like any batch that travelled as a datagram.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
from typing import Any, Dict, List, Optional, Union

from repro.errors import DecodeError
from repro.monitor.codec import Codec, resolve_codec
from repro.monitor.ingest import IngestResult
from repro.monitor.server import MonitorServer
from repro.monitor.transport.base import IngestTransport

#: Sentinel telling a worker to exit.
_STOP = b""


def _decode_worker(
    in_queue: "multiprocessing.Queue[bytes]",
    out_queue: "multiprocessing.Queue[Any]",
    codec_name: str,
) -> None:
    """Worker loop: wire bytes in, binary-transcoded batches (or errors) out."""
    codec = resolve_codec(codec_name)
    binary = resolve_codec("binary")
    while True:
        raw = in_queue.get()
        if raw == _STOP:
            break
        try:
            batch = codec.decode(raw)
        except DecodeError as exc:
            out_queue.put((False, str(exc)))
            continue
        out_queue.put((True, binary.encode(batch)))


class MultiProcessIngestFront(IngestTransport):
    """Decode workers in separate processes feeding one monitor server."""

    name = "mpfront"

    def __init__(
        self,
        server: MonitorServer,
        workers: Optional[int] = None,
        codec: Union[str, Codec] = "json",
    ) -> None:
        """Create (but do not start) the front.

        Args:
            server: ingestion backend; only the parent process touches it.
            workers: decode processes (default: every core but one).
            codec: encoding of the *incoming* wire bytes.
        """
        self._server = server
        self.workers = workers if workers is not None else max(1, (os.cpu_count() or 2) - 1)
        self._codec = resolve_codec(codec)
        self._binary = resolve_codec("binary")
        self._processes: List[multiprocessing.Process] = []
        self._in_queue: Optional["multiprocessing.Queue[bytes]"] = None
        self._out_queue: Optional["multiprocessing.Queue[Any]"] = None
        self._pending = 0
        self.batches_submitted = 0
        self.batches_ingested = 0
        self.decode_failures = 0

    def start(self) -> None:
        """Spawn the worker processes."""
        if self._processes:
            return
        self._in_queue = multiprocessing.Queue()
        self._out_queue = multiprocessing.Queue()
        for _ in range(self.workers):
            process = multiprocessing.Process(
                target=_decode_worker,
                args=(self._in_queue, self._out_queue, self._codec.name),
                daemon=True,
            )
            process.start()
            self._processes.append(process)

    def submit_encoded(self, raw: bytes) -> None:
        """Hand one encoded batch to the decode pool (non-blocking)."""
        if self._in_queue is None:
            raise RuntimeError("MultiProcessIngestFront is not started")
        self._in_queue.put(raw)
        self._pending += 1
        self.batches_submitted += 1

    @property
    def pending(self) -> int:
        """Batches handed to the pool whose results were not collected yet."""
        return self._pending

    def collect(self, timeout_s: Optional[float] = None) -> List[IngestResult]:
        """Ingest every decoded batch currently available.

        Blocks up to ``timeout_s`` for the *first* result (0/None = only
        what is already there), then drains without blocking.
        """
        results: List[IngestResult] = []
        out = self._out_queue
        if out is None:
            return results
        block = timeout_s is not None and timeout_s > 0
        while self._pending:
            try:
                ok, payload = out.get(block=block, timeout=timeout_s if block else None)
            except queue_mod.Empty:
                break
            block = False  # only the first get waits
            self._pending -= 1
            if not ok:
                self.decode_failures += 1
                results.append(IngestResult(ok=False, error=payload))
                continue
            batch = self._binary.decode(payload)
            result = self._server.submit(batch)
            if result.ok:
                self.batches_ingested += 1
            results.append(result)
        return results

    def flush(self, timeout_s: float = 30.0) -> List[IngestResult]:
        """Collect until nothing is pending (or ``timeout_s`` elapses)."""
        results: List[IngestResult] = []
        while self._pending:
            got = self.collect(timeout_s=timeout_s)
            if not got:
                break
            results.extend(got)
        return results

    def stop(self) -> None:
        """Flush outstanding work, then terminate the workers (idempotent)."""
        if not self._processes:
            return
        self.flush()
        assert self._in_queue is not None
        for _ in self._processes:
            self._in_queue.put(_STOP)
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._processes = []
        self._in_queue.close()
        if self._out_queue is not None:
            self._out_queue.close()
        self._in_queue = None
        self._out_queue = None

    def stats_document(self) -> Dict[str, Any]:
        return {
            "transport": self.name,
            "codec": self._codec.name,
            "workers": self.workers,
            "running": bool(self._processes),
            "batches_submitted": self.batches_submitted,
            "batches_ingested": self.batches_ingested,
            "decode_failures": self.decode_failures,
            "pending": self._pending,
        }
