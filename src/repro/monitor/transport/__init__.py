"""Pluggable ingest transports for the monitoring server.

A *codec* (:mod:`repro.monitor.codec`) decides how a record batch is
encoded; a *transport* decides how encoded batches reach the server.
Three transports ship:

* :class:`HttpIngestTransport` — the paper's path: the threaded HTTP
  server with per-request codec negotiation via ``Content-Type``.
* :class:`UdpIngestTransport` — stateless, loss-tolerant telemetry
  datagrams with per-(network, node) sequence-gap accounting, so the
  record loss UDP permits is *measured*, not ignored.
* :class:`MultiProcessIngestFront` — decode workers in separate
  processes, so batch decoding scales with cores instead of serialising
  on the GIL.

Each transport implements :class:`IngestTransport` and can be attached
to a :class:`~repro.monitor.server.MonitorServer` via
``attach_transport``, which surfaces its counters under the
``transports`` key of ``GET /api/v1/server``.
"""

from repro.monitor.transport.base import (
    IngestTransport,
    SequenceGapTracker,
    TelemetryGapAccountant,
)
from repro.monitor.transport.http import HttpIngestTransport
from repro.monitor.transport.mpfront import MultiProcessIngestFront
from repro.monitor.transport.udp import UdpIngestTransport

__all__ = [
    "HttpIngestTransport",
    "IngestTransport",
    "MultiProcessIngestFront",
    "SequenceGapTracker",
    "TelemetryGapAccountant",
    "UdpIngestTransport",
]
