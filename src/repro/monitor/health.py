"""Per-node and network health scoring.

A single 0..100 score per node summarises four weighted components:

* **liveness** (40 %): how recently the node's last batch arrived,
  relative to the expected report interval;
* **delivery** (30 %): the node's PDR as a traffic source;
* **spectrum headroom** (15 %): distance from the duty-cycle cap;
* **battery** (15 %): voltage between the cutoff (3.0 V) and full (4.2 V).

Components without data score neutral (their weight redistributes), so a
node that never sent traffic is not punished for unknown PDR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.monitor import metrics
from repro.monitor.storage import MetricsStore

BATTERY_EMPTY_V = 3.0
BATTERY_FULL_V = 4.2


@dataclass(frozen=True)
class HealthScore:
    """One node's health decomposition."""

    node: int
    score: float
    liveness: Optional[float]
    delivery: Optional[float]
    spectrum: Optional[float]
    battery: Optional[float]


def _clamp01(value: float) -> float:
    return max(0.0, min(1.0, value))


def node_health(
    store: MetricsStore,
    node: int,
    now: float,
    report_interval_s: float = 60.0,
    pdr_window_s: float = 1800.0,
) -> HealthScore:
    """Compute the health score for one node."""
    components: List[Tuple[float, Optional[float]]] = []

    last = store.last_seen(node)
    liveness: Optional[float] = None
    if last is not None:
        # 1.0 up to one interval of silence, linearly to 0.0 at five.
        silence = now - last
        liveness = _clamp01(1.0 - (silence - report_interval_s) / (4.0 * report_interval_s))
    components.append((0.40, liveness))

    delivery: Optional[float] = None
    pairs = metrics.pdr_matrix(store, since=now - pdr_window_s, until=now)
    sent = delivered = 0
    for (src, _dst), pair in pairs.items():
        if src == node:
            sent += pair.sent
            delivered += pair.delivered
    if sent > 0:
        delivery = delivered / sent
    components.append((0.30, delivery))

    status = store.latest_status(node)
    spectrum: Optional[float] = None
    battery: Optional[float] = None
    if status is not None:
        spectrum = _clamp01(1.0 - status.duty_utilisation)
        battery = _clamp01(
            (status.battery_v - BATTERY_EMPTY_V) / (BATTERY_FULL_V - BATTERY_EMPTY_V)
        )
    components.append((0.15, spectrum))
    components.append((0.15, battery))

    total_weight = sum(weight for weight, value in components if value is not None)
    if total_weight == 0:
        score = math.nan
    else:
        score = 100.0 * sum(
            weight * value for weight, value in components if value is not None
        ) / total_weight
    return HealthScore(
        node=node,
        score=score,
        liveness=liveness,
        delivery=delivery,
        spectrum=spectrum,
        battery=battery,
    )


def network_health(
    store: MetricsStore,
    now: float,
    report_interval_s: float = 60.0,
) -> Dict[int, HealthScore]:
    """Health scores for every known node."""
    return {
        node: node_health(store, node, now, report_interval_s=report_interval_s)
        for node in store.nodes()
    }


def network_health_score(
    store: MetricsStore,
    now: float,
    report_interval_s: float = 60.0,
) -> float:
    """Single network-level score: the mean of defined node scores."""
    scores = [
        health.score
        for health in network_health(store, now, report_interval_s).values()
        if not math.isnan(health.score)
    ]
    return sum(scores) / len(scores) if scores else math.nan
