"""The monitoring system — the paper's contribution.

Client side (runs on every LoRa node):

* :class:`~repro.monitor.client.MonitorClient` hooks the node's packet
  in/out observation points, buffers :class:`~repro.monitor.records.PacketRecord`
  and periodic :class:`~repro.monitor.records.StatusRecord` snapshots, and
  ships them to the server in batches over an uplink,
* uplinks: :class:`~repro.monitor.uplink.OutOfBandUplink` (the paper's
  WiFi/HTTP path) and :class:`~repro.monitor.uplink.InBandUplink`
  (telemetry rides the mesh to a gateway node).

Server side:

* :class:`~repro.monitor.server.MonitorServer` validates, deduplicates and
  stores batches in a :class:`~repro.monitor.storage.MetricsStore` (or the
  SQLite-backed :class:`~repro.monitor.sqlitestore.SqliteMetricsStore`,
  whose buffered ``executemany`` write path is the high-throughput
  ingestion knob) through a bounded ingest queue with a configurable
  :class:`~repro.monitor.ingest.BackpressurePolicy`; the pipeline's own
  :class:`~repro.monitor.ingest.ServerSelfMetrics` are served at
  ``GET /api/v1/server`` ("monitor the monitor"),
* the server is **multi-tenant**: each batch carries a ``network_id``
  (implicitly ``default``) and lands in its network's shard — own store,
  dedup windows and counters — managed by a
  :class:`~repro.monitor.registry.NetworkRegistry`;
  :mod:`~repro.monitor.fleet` aggregates the fleet overview,
* :mod:`~repro.monitor.metrics` computes the aggregations the dashboard
  shows (PDR, link quality, traffic matrix, airtime, latency),
* :class:`~repro.monitor.dashboard.Dashboard` renders text/DOT/JSON views,
* :mod:`~repro.monitor.httpapi` serves the versioned, network-scoped
  JSON API (:mod:`~repro.monitor.routes`) over real HTTP,
* :class:`~repro.monitor.alerts.AlertEngine` raises operational alerts,
* :mod:`~repro.monitor.health` scores per-node and network health.
"""

from repro.monitor.alerts import Alert, AlertEngine
from repro.monitor.client import MonitorClient, MonitorClientConfig
from repro.monitor.dashboard import Dashboard
from repro.monitor.ingest import (
    DEFAULT_NETWORK_ID,
    BackpressurePolicy,
    IngestResult,
    ServerSelfMetrics,
)
from repro.monitor.records import Direction, PacketRecord, RecordBatch, StatusRecord
from repro.monitor.registry import NetworkRegistry, NetworkShard
from repro.monitor.server import MonitorServer
from repro.monitor.sqlitestore import SqliteMetricsStore
from repro.monitor.storage import MetricsStore
from repro.monitor.uplink import (
    GatewayBridge,
    HttpIngestClient,
    InBandUplink,
    OutOfBandUplink,
    ReliableInBandUplink,
)

__all__ = [
    "Alert",
    "AlertEngine",
    "MonitorClient",
    "MonitorClientConfig",
    "Dashboard",
    "Direction",
    "PacketRecord",
    "RecordBatch",
    "StatusRecord",
    "BackpressurePolicy",
    "IngestResult",
    "MonitorServer",
    "ServerSelfMetrics",
    "DEFAULT_NETWORK_ID",
    "NetworkRegistry",
    "NetworkShard",
    "MetricsStore",
    "SqliteMetricsStore",
    "GatewayBridge",
    "HttpIngestClient",
    "InBandUplink",
    "OutOfBandUplink",
    "ReliableInBandUplink",
]
