"""The monitoring system — the paper's contribution.

Client side (runs on every LoRa node):

* :class:`~repro.monitor.client.MonitorClient` hooks the node's packet
  in/out observation points, buffers :class:`~repro.monitor.records.PacketRecord`
  and periodic :class:`~repro.monitor.records.StatusRecord` snapshots, and
  ships them to the server in batches over an uplink,
* uplinks: :class:`~repro.monitor.uplink.OutOfBandUplink` (the paper's
  WiFi/HTTP path) and :class:`~repro.monitor.uplink.InBandUplink`
  (telemetry rides the mesh to a gateway node).

Server side:

* :class:`~repro.monitor.server.MonitorServer` validates, deduplicates and
  stores batches in a :class:`~repro.monitor.storage.MetricsStore` (or the
  SQLite-backed :class:`~repro.monitor.sqlitestore.SqliteMetricsStore`,
  whose buffered ``executemany`` write path is the high-throughput
  ingestion knob) through a bounded ingest queue with a configurable
  :class:`~repro.monitor.server.BackpressurePolicy`; the pipeline's own
  :class:`~repro.monitor.server.ServerSelfMetrics` are served at
  ``GET /api/server`` ("monitor the monitor"),
* :mod:`~repro.monitor.metrics` computes the aggregations the dashboard
  shows (PDR, link quality, traffic matrix, airtime, latency),
* :class:`~repro.monitor.dashboard.Dashboard` renders text/DOT/JSON views,
* :mod:`~repro.monitor.httpapi` serves the JSON API over real HTTP,
* :class:`~repro.monitor.alerts.AlertEngine` raises operational alerts,
* :mod:`~repro.monitor.health` scores per-node and network health.
"""

from repro.monitor.alerts import Alert, AlertEngine
from repro.monitor.client import MonitorClient, MonitorClientConfig
from repro.monitor.dashboard import Dashboard
from repro.monitor.records import Direction, PacketRecord, RecordBatch, StatusRecord
from repro.monitor.server import (
    BackpressurePolicy,
    IngestResult,
    MonitorServer,
    ServerSelfMetrics,
)
from repro.monitor.sqlitestore import SqliteMetricsStore
from repro.monitor.storage import MetricsStore
from repro.monitor.uplink import (
    GatewayBridge,
    InBandUplink,
    OutOfBandUplink,
    ReliableInBandUplink,
)

__all__ = [
    "Alert",
    "AlertEngine",
    "MonitorClient",
    "MonitorClientConfig",
    "Dashboard",
    "Direction",
    "PacketRecord",
    "RecordBatch",
    "StatusRecord",
    "BackpressurePolicy",
    "IngestResult",
    "MonitorServer",
    "ServerSelfMetrics",
    "MetricsStore",
    "SqliteMetricsStore",
    "GatewayBridge",
    "InBandUplink",
    "OutOfBandUplink",
    "ReliableInBandUplink",
]
