"""Server-side metrics store.

Holds every accepted packet and status record, indexed per observer node,
with bounded retention.  Query methods are the substrate for the metric
aggregations, the dashboard and the HTTP API.  A multi-tenant server
holds one store per network (see :mod:`repro.monitor.registry`); a store
never contains records from more than one network.

The store is deliberately schema-first rather than a generic TSDB: the
record types are fixed, so queries can expose exactly the filters the
dashboard needs (observer, direction, packet type, time window, src/dst).

The write API mirrors :class:`~repro.monitor.sqlitestore.SqliteMetricsStore`
— single-record adds, batch adds (``add_packet_records`` /
``add_status_records``) and ``flush()``/``close()`` — so the two backends
stay drop-in interchangeable for the server's batched ingestion path.
For the in-memory store the batch adds are plain loops and flush/close
are no-ops (writes are immediately visible and nothing needs closing).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional

from repro.errors import StorageError
from repro.monitor.records import Direction, PacketRecord, StatusRecord


class MetricsStore:
    """In-memory time-series store for telemetry records."""

    def __init__(self, max_packet_records_per_node: int = 200_000, max_status_records_per_node: int = 20_000) -> None:
        if max_packet_records_per_node < 1 or max_status_records_per_node < 1:
            raise StorageError("retention bounds must be >= 1")
        self._packet_by_node: Dict[int, Deque[PacketRecord]] = {}
        self._status_by_node: Dict[int, Deque[StatusRecord]] = {}
        self._max_packets = max_packet_records_per_node
        self._max_status = max_status_records_per_node
        self._packet_evictions = 0
        self._dropped_reported: Dict[int, int] = {}
        self._last_batch_at: Dict[int, float] = {}

    # -- writes ---------------------------------------------------------------

    def add_packet_record(self, record: PacketRecord) -> None:
        bucket = self._packet_by_node.get(record.node)
        if bucket is None:
            bucket = deque(maxlen=self._max_packets)
            self._packet_by_node[record.node] = bucket
        if len(bucket) == self._max_packets:
            self._packet_evictions += 1
        bucket.append(record)

    def add_status_record(self, record: StatusRecord) -> None:
        bucket = self._status_by_node.get(record.node)
        if bucket is None:
            bucket = deque(maxlen=self._max_status)
            self._status_by_node[record.node] = bucket
        bucket.append(record)

    def add_packet_records(self, records: Iterable[PacketRecord]) -> None:
        """Add many packet records (batch mirror of the SQLite store)."""
        for record in records:
            self.add_packet_record(record)

    def add_status_records(self, records: Iterable[StatusRecord]) -> None:
        """Add many status records (batch mirror of the SQLite store)."""
        for record in records:
            self.add_status_record(record)

    def flush(self) -> bool:
        """No-op (in-memory writes are immediately visible); returns False."""
        return False

    def close(self) -> None:
        """No-op, for API parity with the SQLite store."""

    def __enter__(self) -> "MetricsStore":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def note_batch(self, node: int, received_at: float, dropped_records: int) -> None:
        """Record batch-level metadata (client-side loss, liveness)."""
        self._last_batch_at[node] = received_at
        if dropped_records:
            self._dropped_reported[node] = (
                self._dropped_reported.get(node, 0) + dropped_records
            )

    # -- reads ----------------------------------------------------------------

    def nodes(self) -> List[int]:
        """All node addresses that ever reported anything, sorted."""
        return sorted(
            set(self._packet_by_node) | set(self._status_by_node) | set(self._last_batch_at)
        )

    def packet_records(
        self,
        node: Optional[int] = None,
        direction: Optional[Direction] = None,
        ptype: Optional[int] = None,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Iterator[PacketRecord]:
        """Iterate packet records matching all given filters."""
        if node is not None:
            buckets = [self._packet_by_node.get(node, deque())]
        else:
            buckets = [self._packet_by_node[key] for key in sorted(self._packet_by_node)]
        for bucket in buckets:
            for record in bucket:
                if direction is not None and record.direction != direction:
                    continue
                if ptype is not None and record.ptype != ptype:
                    continue
                if src is not None and record.src != src:
                    continue
                if dst is not None and record.dst != dst:
                    continue
                if since is not None and record.timestamp < since:
                    continue
                if until is not None and record.timestamp > until:
                    continue
                yield record

    def status_records(
        self,
        node: int,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Iterator[StatusRecord]:
        """Iterate one node's status records in arrival order."""
        for record in self._status_by_node.get(node, ()):  # arrival order == time order per node
            if since is not None and record.timestamp < since:
                continue
            if until is not None and record.timestamp > until:
                continue
            yield record

    def latest_status(self, node: int) -> Optional[StatusRecord]:
        bucket = self._status_by_node.get(node)
        if not bucket:
            return None
        return bucket[-1]

    def status_series(
        self,
        node: int,
        fields: List[str],
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[Dict[str, float]]:
        """Extract a time series of status fields for plotting.

        Raises:
            StorageError: when a requested field does not exist.
        """
        series = []
        for record in self.status_records(node, since=since, until=until):
            point: Dict[str, float] = {"ts": record.timestamp}
            for name in fields:
                if not hasattr(record, name):
                    raise StorageError(f"unknown status field {name!r}")
                point[name] = float(getattr(record, name))
            series.append(point)
        return series

    def last_seen(self, node: int) -> Optional[float]:
        """Server receive time of the node's most recent batch."""
        return self._last_batch_at.get(node)

    def reported_drops(self, node: int) -> int:
        """Client-reported buffer-overflow drops for ``node``."""
        return self._dropped_reported.get(node, 0)

    def packet_record_count(self, node: Optional[int] = None) -> int:
        if node is not None:
            return len(self._packet_by_node.get(node, ()))
        return sum(len(bucket) for bucket in self._packet_by_node.values())

    def status_record_count(self, node: Optional[int] = None) -> int:
        if node is not None:
            return len(self._status_by_node.get(node, ()))
        return sum(len(bucket) for bucket in self._status_by_node.values())

    @property
    def evictions(self) -> int:
        """Packet records discarded due to the retention bound."""
        return self._packet_evictions

    def time_bounds(self) -> Optional[tuple]:
        """(earliest, latest) packet-record timestamp, or None when empty."""
        earliest: Optional[float] = None
        latest: Optional[float] = None
        for bucket in self._packet_by_node.values():
            if not bucket:
                continue
            if earliest is None or bucket[0].timestamp < earliest:
                earliest = bucket[0].timestamp
            if latest is None or bucket[-1].timestamp > latest:
                latest = bucket[-1].timestamp
        if earliest is None or latest is None:
            return None
        return (earliest, latest)
