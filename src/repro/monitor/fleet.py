"""Fleet-level aggregation across every network a server monitors.

One monitoring server ingests telemetry from many independent mesh
networks (the smart-campus deployment shape); the fleet overview is the
operator's first screen: one tile per network — node count, health,
PDR, ingest counters, last activity — plus fleet totals and the top-N
unhealthiest networks that deserve attention first.

Everything here is computed from the per-network shards the server
already maintains; there is no fleet-level store.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.monitor import metrics
from repro.monitor.health import network_health_score

if TYPE_CHECKING:
    from repro.monitor.server import MonitorServer


def network_tile(
    server: "MonitorServer",
    network_id: str,
    now: float,
    report_interval_s: float = 60.0,
    pdr_window_s: float = 1800.0,
) -> Optional[Dict[str, Any]]:
    """One network's fleet tile, or None for an unknown network."""
    shard = server.shard_for(network_id)
    if shard is None:
        return None
    store = shard.store
    health = network_health_score(store, now, report_interval_s=report_interval_s)
    pdr = metrics.network_pdr(store, since=now - pdr_window_s, until=now)
    return {
        "network": network_id,
        "nodes": len(store.nodes()),
        "health": None if math.isnan(health) else round(health, 1),
        "pdr": None if math.isnan(pdr) else round(pdr, 4),
        "batches_ingested": shard.batches_ingested,
        "records_ingested": shard.records_ingested,
        "dedup_hits": shard.dedup_hits,
        "queued_batches": shard.queued_batches,
        "last_batch_at": shard.last_batch_at,
    }


def fleet_overview(
    server: "MonitorServer",
    now: float,
    report_interval_s: float = 60.0,
    pdr_window_s: float = 1800.0,
    top_n_unhealthy: int = 5,
) -> Dict[str, Any]:
    """The ``GET /api/v1/fleet`` document.

    Keys:
        now: server time the overview was computed at.
        networks: one tile per resident network, sorted by id.
        totals: fleet-wide sums (networks, nodes, batches, records).
        top_unhealthy: up to ``top_n_unhealthy`` tiles with the lowest
            defined health score, worst first — the triage list.
    """
    tiles: List[Dict[str, Any]] = []
    for network_id in server.networks():
        tile = network_tile(
            server,
            network_id,
            now,
            report_interval_s=report_interval_s,
            pdr_window_s=pdr_window_s,
        )
        if tile is not None:
            tiles.append(tile)
    totals = {
        "networks": len(tiles),
        "nodes": sum(int(tile["nodes"]) for tile in tiles),
        "batches_ingested": sum(int(tile["batches_ingested"]) for tile in tiles),
        "records_ingested": sum(int(tile["records_ingested"]) for tile in tiles),
        "network_evictions": server.registry.evictions,
    }
    scored = [tile for tile in tiles if tile["health"] is not None]
    scored.sort(key=lambda tile: float(tile["health"]))
    return {
        "now": now,
        "networks": tiles,
        "totals": totals,
        "top_unhealthy": scored[:top_n_unhealthy],
    }
