"""Fleet-level aggregation across every network a server monitors.

One monitoring server ingests telemetry from many independent mesh
networks (the smart-campus deployment shape); the fleet overview is the
operator's first screen: one tile per network — node count, health,
PDR, ingest counters, last activity — plus fleet totals and the top-N
unhealthiest networks that deserve attention first.

Incremental tiles
-----------------

Until the push pipeline landed, every overview request re-scanned every
network's store (``O(networks × records)`` — 19 ms at 8 networks and
unusable at 512).  Now each :class:`~repro.monitor.registry.NetworkShard`
owns a :class:`TileAggregate` the ingest path feeds record-by-record:
per-node liveness/battery/duty snapshots and per-pair delivery counters
mirroring :func:`repro.monitor.metrics.pdr_matrix`'s matching rules with
bounded memory.  :func:`materialized_tile` renders a tile from those
aggregates in O(nodes in that network); :func:`fleet_overview` assembles
tiles into the overview document and caches it on the server keyed by
ingest progress, so steady-state reads are O(1) snapshot hits no matter
how many networks are resident.

Two documented deviations from the scan-based tiles: delivery counters
are cumulative since shard creation rather than windowed over
``pdr_window_s`` (the parameter is kept for signature compatibility),
and a cached overview reflects the state as of the last ingest delta
*or* the last elapsed ``report_interval_s`` time bucket, whichever is
newer — so liveness-driven health keeps decaying while a fleet is
silent instead of freezing at its last healthy snapshot.

The aggregates are mutated by the ingest path under the server lock;
HTTP handler threads therefore read them through
:meth:`~repro.monitor.server.MonitorServer.materialize_tile` /
:meth:`~repro.monitor.server.MonitorServer.materialize_tiles`, which
take the same lock (:func:`materialized_tile` itself is lock-free and
is only called directly where the lock is already held).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.mesh.addressing import BROADCAST
from repro.mesh.packet import PacketType
from repro.monitor.alerts import NodeDelta
from repro.monitor.health import BATTERY_EMPTY_V, BATTERY_FULL_V
from repro.monitor.records import Direction, PacketRecord, StatusRecord
from repro.monitor.storage import MetricsStore

if TYPE_CHECKING:
    from repro.monitor.registry import NetworkShard
    from repro.monitor.server import MonitorServer

#: Bound on per-pair pending packet-id match state (ids kept while the
#: other endpoint's observation has not arrived yet).
DEFAULT_PENDING_IDS = 4096

_DATA_PTYPE = int(PacketType.DATA)

#: Health component weights, mirroring :mod:`repro.monitor.health`.
_W_LIVENESS = 0.40
_W_DELIVERY = 0.30
_W_SPECTRUM = 0.15
_W_BATTERY = 0.15


def _clamp01(value: float) -> float:
    return max(0.0, min(1.0, value))


def _remember(ring: "OrderedDict[int, None]", key: int, bound: int) -> None:
    """Insert ``key`` into a bounded insertion-ordered set."""
    ring[key] = None
    if len(ring) > bound:
        ring.popitem(last=False)


class _NodeTelemetry:
    """One node's latest-state snapshot, fed at ingest time."""

    __slots__ = (
        "last_seen",
        "battery_v",
        "duty_utilisation",
        "queue_depth",
        "sent",
        "matched",
    )

    def __init__(self) -> None:
        self.last_seen: Optional[float] = None
        self.battery_v: Optional[float] = None
        self.duty_utilisation: Optional[float] = None
        self.queue_depth: Optional[int] = None
        #: Unicast DATA packets this node originated / saw delivered.
        self.sent = 0
        self.matched = 0


class _PairDelivery:
    """Bounded incremental mirror of :class:`repro.monitor.metrics.PairDelivery`.

    ``sent`` counts origin first-attempt OUT observations; ``matched``
    counts packet ids seen at *both* endpoints, whichever side reported
    first.  Pending ids waiting for the other side live in bounded
    insertion-ordered sets, so per-pair memory does not grow with
    traffic; an id evicted before its match simply never matches (the
    same packet is then conservatively counted as undelivered).
    """

    __slots__ = ("sent", "matched", "_out_unmatched", "_out_matched", "_in_pending", "_bound")

    def __init__(self, bound: int) -> None:
        self.sent = 0
        self.matched = 0
        self._bound = bound
        self._out_unmatched: "OrderedDict[int, None]" = OrderedDict()
        self._out_matched: "OrderedDict[int, None]" = OrderedDict()
        self._in_pending: "OrderedDict[int, None]" = OrderedDict()

    def observe_out(self, packet_id: int) -> bool:
        """Origin reported the send; True when this completed a match."""
        if packet_id in self._out_unmatched or packet_id in self._out_matched:
            return False  # duplicate origin report
        self.sent += 1
        if packet_id in self._in_pending:
            del self._in_pending[packet_id]
            self.matched += 1
            _remember(self._out_matched, packet_id, self._bound)
            return True
        _remember(self._out_unmatched, packet_id, self._bound)
        return False

    def observe_in(self, packet_id: int) -> bool:
        """Destination reported delivery; True when this completed a match."""
        if packet_id in self._out_matched or packet_id in self._in_pending:
            return False  # duplicate delivery report
        if packet_id in self._out_unmatched:
            del self._out_unmatched[packet_id]
            self.matched += 1
            _remember(self._out_matched, packet_id, self._bound)
            return True
        _remember(self._in_pending, packet_id, self._bound)
        return False


class TileAggregate:
    """Everything a fleet tile needs, maintained incrementally at ingest.

    The ingest path calls :meth:`observe_batch` / :meth:`observe_packet`
    / :meth:`observe_status` for each accepted record (under the server
    lock — all methods are pure in-memory bookkeeping).  Reads then cost
    O(nodes in this network) instead of O(records in the store).
    """

    def __init__(self, pending_ids: int = DEFAULT_PENDING_IDS) -> None:
        self._pending_ids = pending_ids
        self._nodes: Dict[int, _NodeTelemetry] = {}
        self._pairs: Dict[Tuple[int, int], _PairDelivery] = {}

    # -- feeding ---------------------------------------------------------------

    def _node(self, node: int) -> _NodeTelemetry:
        telemetry = self._nodes.get(node)
        if telemetry is None:
            telemetry = _NodeTelemetry()
            self._nodes[node] = telemetry
        return telemetry

    def _pair(self, src: int, dst: int) -> _PairDelivery:
        key = (src, dst)
        pair = self._pairs.get(key)
        if pair is None:
            pair = _PairDelivery(self._pending_ids)
            self._pairs[key] = pair
        return pair

    def observe_batch(self, node: int, now: float) -> None:
        """A batch from ``node`` was accepted at server time ``now``."""
        self._node(node).last_seen = now

    def observe_packet(self, record: PacketRecord) -> None:
        """One accepted packet record (mirrors ``pdr_matrix`` filters)."""
        self._node(record.node)  # the observer is a known node
        if record.ptype != _DATA_PTYPE or record.dst == BROADCAST:
            return
        if record.direction is Direction.OUT:
            if record.node == record.src and record.attempt == 1:
                matched = self._pair(record.src, record.dst).observe_out(record.packet_id)
                telemetry = self._node(record.src)
                telemetry.sent += 1
                if matched:
                    telemetry.matched += 1
        else:
            if record.node == record.dst:
                if self._pair(record.src, record.dst).observe_in(record.packet_id):
                    source = self._nodes.get(record.src)
                    if source is not None:
                        source.matched += 1

    def observe_status(self, record: StatusRecord) -> None:
        """One accepted status record: refresh the node's snapshot."""
        telemetry = self._node(record.node)
        telemetry.battery_v = record.battery_v
        telemetry.duty_utilisation = record.duty_utilisation
        telemetry.queue_depth = record.queue_depth

    def seed_from_store(self, store: MetricsStore) -> None:
        """Replay an already populated store into the aggregates.

        Called once when a shard adopts an external store (the
        historical single-network API) so tiles start from the store's
        state; a freshly created store replays nothing.
        """
        for record in store.packet_records():
            self.observe_packet(record)
        for node in store.nodes():
            self._node(node)
            status = store.latest_status(node)
            if status is not None:
                self.observe_status(status)
            last = store.last_seen(node)
            if last is not None:
                self.observe_batch(node, last)

    # -- reading ---------------------------------------------------------------

    def node_delta(self, node: int) -> NodeDelta:
        """The node's current snapshot for O(delta) alert evaluation.

        Pure in-memory read (no store access) so the ingest path can
        call it under the server lock.  An unknown node yields an empty
        delta — every field None, so no rule can judge it yet.
        """
        telemetry = self._nodes.get(node)
        if telemetry is None:
            return NodeDelta(node=node)
        return NodeDelta(
            node=node,
            last_seen=telemetry.last_seen,
            battery_v=telemetry.battery_v,
            duty_utilisation=telemetry.duty_utilisation,
            queue_depth=telemetry.queue_depth,
        )

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def pdr(self) -> float:
        """Aggregate delivery ratio across all unicast pairs (NaN if idle)."""
        sent = sum(pair.sent for pair in self._pairs.values())
        if not sent:
            return math.nan
        matched = sum(pair.matched for pair in self._pairs.values())
        return matched / sent

    def health(self, now: float, report_interval_s: float = 60.0) -> float:
        """Network health score mirroring :mod:`repro.monitor.health` weights.

        Per node: liveness (40 %) from the last accepted batch, delivery
        (30 %) from the incremental match counters, spectrum and battery
        (15 % each) from the latest status snapshot.  Components without
        data redistribute their weight; a network with no data at all
        scores NaN.
        """
        scores: List[float] = []
        for telemetry in self._nodes.values():
            components: List[Tuple[float, Optional[float]]] = []
            liveness: Optional[float] = None
            if telemetry.last_seen is not None:
                silence = now - telemetry.last_seen
                liveness = _clamp01(
                    1.0 - (silence - report_interval_s) / (4.0 * report_interval_s)
                )
            components.append((_W_LIVENESS, liveness))
            delivery: Optional[float] = None
            if telemetry.sent > 0:
                delivery = telemetry.matched / telemetry.sent
            components.append((_W_DELIVERY, delivery))
            spectrum: Optional[float] = None
            if telemetry.duty_utilisation is not None:
                spectrum = _clamp01(1.0 - telemetry.duty_utilisation)
            components.append((_W_SPECTRUM, spectrum))
            battery: Optional[float] = None
            if telemetry.battery_v is not None:
                battery = _clamp01(
                    (telemetry.battery_v - BATTERY_EMPTY_V)
                    / (BATTERY_FULL_V - BATTERY_EMPTY_V)
                )
            components.append((_W_BATTERY, battery))
            total_weight = sum(weight for weight, value in components if value is not None)
            if total_weight == 0:
                continue
            scores.append(
                100.0
                * sum(weight * value for weight, value in components if value is not None)
                / total_weight
            )
        return sum(scores) / len(scores) if scores else math.nan


def materialized_tile(
    shard: "NetworkShard",
    now: float,
    report_interval_s: float = 60.0,
) -> Dict[str, Any]:
    """One network's fleet tile from its incremental aggregates."""
    tile = shard.tile
    health = tile.health(now, report_interval_s=report_interval_s)
    pdr = tile.pdr()
    return {
        "network": shard.network_id,
        "nodes": tile.node_count,
        "health": None if math.isnan(health) else round(health, 1),
        "pdr": None if math.isnan(pdr) else round(pdr, 4),
        "batches_ingested": shard.batches_ingested,
        "records_ingested": shard.records_ingested,
        "dedup_hits": shard.dedup_hits,
        "queued_batches": shard.queued_batches,
        "last_batch_at": shard.last_batch_at,
    }


def network_tile(
    server: "MonitorServer",
    network_id: str,
    now: float,
    report_interval_s: float = 60.0,
    pdr_window_s: float = 1800.0,
) -> Optional[Dict[str, Any]]:
    """One network's fleet tile, or None for an unknown network.

    ``pdr_window_s`` is kept for signature compatibility; the
    incremental delivery counters are cumulative since shard creation.
    """
    del pdr_window_s
    shard = server.shard_for(network_id)
    if shard is None:
        return None
    # Through the server so the tile aggregates are read under the same
    # lock the ingest path mutates them with.
    return server.materialize_tile(shard, now, report_interval_s=report_interval_s)


def fleet_overview(
    server: "MonitorServer",
    now: float,
    report_interval_s: float = 60.0,
    pdr_window_s: float = 1800.0,
    top_n_unhealthy: int = 5,
) -> Dict[str, Any]:
    """The ``GET /api/v1/fleet`` document — a snapshot read, not a scan.

    Keys:
        now: server time the overview was computed at.
        networks: one tile per resident network, sorted by id.
        totals: fleet-wide sums (networks, nodes, batches, records).
        top_unhealthy: up to ``top_n_unhealthy`` tiles with the lowest
            defined health score, worst first — the triage list.

    The assembled document is cached on the server keyed by ingest
    progress (batches ingested, evictions, resident networks) plus the
    rendering parameters *and* a coarse time bucket
    (``now // report_interval_s``): steady-state reads between deltas
    return the cached snapshot in O(1), but a cached document never
    outlives one report interval — a fleet that goes entirely silent
    keeps re-scoring, so liveness-driven health and the triage list
    decay instead of freezing.  Treat the returned document as
    immutable.
    """
    del pdr_window_s
    key = server.fleet_version() + (
        report_interval_s,
        top_n_unhealthy,
        math.floor(now / report_interval_s),
    )
    cached = server.fleet_cache_get(key)
    if cached is not None:
        return cached
    tiles = server.materialize_tiles(now, report_interval_s=report_interval_s)
    totals = {
        "networks": len(tiles),
        "nodes": sum(int(tile["nodes"]) for tile in tiles),
        "batches_ingested": sum(int(tile["batches_ingested"]) for tile in tiles),
        "records_ingested": sum(int(tile["records_ingested"]) for tile in tiles),
        "network_evictions": server.registry.evictions,
    }
    scored = [tile for tile in tiles if tile["health"] is not None]
    scored.sort(key=lambda tile: float(tile["health"]))
    document = {
        "now": now,
        "networks": tiles,
        "totals": totals,
        "top_unhealthy": scored[:top_n_unhealthy],
    }
    server.fleet_cache_put(key, document)
    return document
