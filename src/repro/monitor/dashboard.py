"""Dashboard renderers.

The paper's server "visualizes the information through a dashboard".  This
module renders the same panels in three media:

* :meth:`Dashboard.render_text` — a terminal dashboard (node table, link
  table, traffic matrix, traffic composition, alerts),
* :meth:`Dashboard.render_dot` — Graphviz DOT of the reported topology,
* :meth:`Dashboard.to_json_dict` — the structured document behind the
  HTTP API, consumable by any web frontend.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.monitor import health as health_mod
from repro.monitor import metrics
from repro.monitor.alerts import AlertEngine
from repro.monitor.storage import MetricsStore

if TYPE_CHECKING:  # the observability layer is optional for the dashboard
    from repro.obs.recorder import FlightRecorder


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Fixed-width ASCII table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: float, suffix: str = "", digits: int = 1) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.{digits}f}{suffix}"


class Dashboard:
    """Aggregated views over a metrics store."""

    def __init__(
        self,
        store: MetricsStore,
        alert_engine: Optional[AlertEngine] = None,
        report_interval_s: float = 60.0,
        monitor_server: Optional[Any] = None,
        flight_recorder: Optional["FlightRecorder"] = None,
        network_id: Optional[str] = None,
    ) -> None:
        """Args:
            store: the metrics store to render.
            alert_engine: alert rules (a default engine when omitted).
            report_interval_s: the clients' flush cadence (liveness maths).
            monitor_server: optional :class:`~repro.monitor.server.MonitorServer`
                whose self-metrics feed the ``[server]`` panel ("monitor
                the monitor"); omit to hide the panel.
            flight_recorder: optional :class:`~repro.obs.recorder.FlightRecorder`
                feeding the ``[drops]`` panel (message verdicts and drop
                accounting); omit to hide the panel.
            network_id: label when this dashboard renders one network of
                a multi-tenant server; None keeps the single-network
                output byte-identical.
        """
        self.store = store
        self.alerts = alert_engine if alert_engine is not None else AlertEngine(store)
        self.report_interval_s = report_interval_s
        self.monitor_server = monitor_server
        self.flight_recorder = flight_recorder
        self.network_id = network_id

    # -- panels ------------------------------------------------------------------

    def node_rows(self, now: float) -> List[Dict[str, Any]]:
        """One summary row per known node."""
        scores = health_mod.network_health(self.store, now, self.report_interval_s)
        rows = []
        for node in self.store.nodes():
            status = self.store.latest_status(node)
            last = self.store.last_seen(node)
            rows.append(
                {
                    "node": node,
                    "last_seen_age_s": (now - last) if last is not None else None,
                    "uptime_s": status.uptime_s if status else None,
                    "battery_v": status.battery_v if status else None,
                    "queue": status.queue_depth if status else None,
                    "routes": status.route_count if status else None,
                    "neighbors": status.neighbor_count if status else None,
                    "duty": status.duty_utilisation if status else None,
                    "tx_frames": status.tx_frames if status else None,
                    "drops": status.drops if status else None,
                    "client_drops": self.store.reported_drops(node),
                    "health": scores[node].score if node in scores else None,
                }
            )
        return rows

    def link_rows(self, since: Optional[float] = None) -> List[Dict[str, Any]]:
        """One row per directed radio link."""
        return [
            {
                "tx": link.tx,
                "rx": link.rx,
                "frames": link.frames,
                "rssi_mean": link.rssi_mean,
                "rssi_min": link.rssi_min,
                "rssi_max": link.rssi_max,
                "snr_mean": link.snr_mean,
            }
            for (_tx, _rx), link in sorted(metrics.link_quality(self.store, since=since).items())
        ]

    def pdr_rows(self, since: Optional[float] = None) -> List[Dict[str, Any]]:
        """One row per unicast (src, dst) pair with traffic."""
        rows = []
        latencies = metrics.delivery_latency(self.store, since=since)
        for (src, dst), pair in sorted(metrics.pdr_matrix(self.store, since=since).items()):
            latency = latencies.get((src, dst))
            rows.append(
                {
                    "src": src,
                    "dst": dst,
                    "sent": pair.sent,
                    "delivered": pair.delivered,
                    "pdr": pair.pdr,
                    "latency_mean_s": latency.mean if latency else None,
                    "latency_p95_s": latency.percentile(95) if latency else None,
                }
            )
        return rows

    def server_document(self) -> Optional[Dict[str, Any]]:
        """Self-metrics of the attached monitoring server, or None."""
        if self.monitor_server is None:
            return None
        return self.monitor_server.self_metrics_document()

    def drops_document(self) -> Optional[Dict[str, Any]]:
        """Flight-recorder summary (verdicts + drop tables), or None."""
        if self.flight_recorder is None:
            return None
        return self.flight_recorder.to_json_dict()

    # -- renderers ----------------------------------------------------------------

    def render_text(self, now: float) -> str:
        """Full terminal dashboard."""
        self.alerts.evaluate(now)
        label = "" if self.network_id is None else f" [{self.network_id}]"
        sections = [f"=== LoRa mesh monitor{label} @ t={now:.0f}s ==="]

        node_rows = self.node_rows(now)
        sections.append("\n[nodes]")
        sections.append(
            _format_table(
                ["node", "seen", "uptime", "batt", "queue", "routes", "neigh", "duty", "health"],
                [
                    [
                        str(row["node"]),
                        _fmt(row["last_seen_age_s"], "s", 0),
                        _fmt(row["uptime_s"], "s", 0),
                        _fmt(row["battery_v"], "V", 2),
                        _fmt(float(row["queue"]) if row["queue"] is not None else None, "", 0),
                        _fmt(float(row["routes"]) if row["routes"] is not None else None, "", 0),
                        _fmt(float(row["neighbors"]) if row["neighbors"] is not None else None, "", 0),
                        _fmt(row["duty"] * 100 if row["duty"] is not None else None, "%", 1),
                        _fmt(row["health"], "", 0),
                    ]
                    for row in node_rows
                ],
            )
        )

        link_rows = self.link_rows()
        sections.append("\n[links]  (tx -> rx as heard by rx)")
        sections.append(
            _format_table(
                ["tx", "rx", "frames", "rssi", "snr"],
                [
                    [
                        str(row["tx"]),
                        str(row["rx"]),
                        str(row["frames"]),
                        _fmt(row["rssi_mean"], "dBm", 1),
                        _fmt(row["snr_mean"], "dB", 1),
                    ]
                    for row in link_rows
                ],
            )
        )

        pdr_rows = self.pdr_rows()
        if pdr_rows:
            sections.append("\n[delivery]")
            sections.append(
                _format_table(
                    ["src", "dst", "sent", "delivered", "pdr", "lat-mean", "lat-p95"],
                    [
                        [
                            str(row["src"]),
                            str(row["dst"]),
                            str(row["sent"]),
                            str(row["delivered"]),
                            _fmt(row["pdr"] * 100 if row["pdr"] is not None else None, "%", 1),
                            _fmt(row["latency_mean_s"], "s", 2),
                            _fmt(row["latency_p95_s"], "s", 2),
                        ]
                        for row in pdr_rows
                    ],
                )
            )

        breakdown = metrics.type_breakdown(self.store)
        if breakdown:
            sections.append("\n[traffic composition]")
            sections.append(
                _format_table(
                    ["type", "frames", "bytes", "airtime"],
                    [
                        [row.name, str(row.frames_out), str(row.bytes_out), _fmt(row.airtime_s, "s", 2)]
                        for row in breakdown
                    ],
                )
            )

        server_doc = self.server_document()
        if server_doc is not None:
            sections.append("\n[server]  (self-metrics)")
            sections.append(
                _format_table(
                    ["batches", "records", "dedup", "decode-err", "rejected", "dropped",
                     "queue", "q-hiwater", "flushes", "flush-max"],
                    [[
                        str(server_doc["batches_ingested"]),
                        str(server_doc["records_ingested"]),
                        str(server_doc["dedup_hits"]),
                        str(server_doc["decode_failures"]),
                        str(server_doc["batches_rejected"]),
                        str(server_doc["batches_dropped"]),
                        str(server_doc["queue_depth"]),
                        str(server_doc["queue_high_water"]),
                        str(server_doc["store_flushes"]),
                        _fmt(server_doc["flush_latency_max_ms"], "ms", 2),
                    ]],
                )
            )

        drops_doc = self.drops_document()
        if drops_doc is not None:
            sections.append("\n[drops]  (flight recorder: message verdicts / drop events)")
            verdicts = {k: v for k, v in drops_doc["verdicts"].items() if v}
            sections.append(
                _format_table(
                    ["verdict", "messages"],
                    [[verdict, str(count)] for verdict, count in verdicts.items()],
                )
            )
            reasons = drops_doc["drops_by_reason"]
            if reasons:
                sections.append(
                    _format_table(
                        ["drop reason", "events"],
                        [
                            [reason, str(count)]
                            for reason, count in sorted(reasons.items(), key=lambda kv: -kv[1])
                        ],
                    )
                )

        active = self.alerts.active()
        sections.append(f"\n[alerts]  {len(active)} active")
        for alert in active:
            node_label = f"node {alert.node}" if alert.node is not None else "network"
            sections.append(
                f"  {alert.severity.upper():8s} {alert.rule:14s} {node_label}: "
                f"{alert.message} (since t={alert.raised_at:.0f}s)"
            )
        return "\n".join(sections)

    def render_dot(self) -> str:
        """Graphviz DOT digraph of the reported topology."""
        lines = [
            "digraph lora_mesh {",
            "  rankdir=LR;",
            '  node [shape=circle, fontsize=10];',
        ]
        for node in self.store.nodes():
            lines.append(f'  n{node} [label="{node}"];')
        for edge in metrics.neighbor_graph(self.store):
            lines.append(
                f'  n{edge.tx} -> n{edge.rx} [label="{edge.rssi_dbm:.0f}dBm", fontsize=8];'
            )
        lines.append("}")
        return "\n".join(lines)

    def to_json_dict(self, now: float) -> Dict[str, Any]:
        """Structured dashboard document (the HTTP API response body).

        The ``network`` key appears only for labelled (multi-tenant)
        dashboards so the single-network document stays byte-identical.
        """
        self.alerts.evaluate(now)
        document: Dict[str, Any] = {}
        if self.network_id is not None:
            document["network"] = self.network_id
        return {
            **document,
            "now": now,
            "network_health": health_mod.network_health_score(
                self.store, now, self.report_interval_s
            ),
            "network_pdr": metrics.network_pdr(self.store),
            "nodes": self.node_rows(now),
            "links": self.link_rows(),
            "delivery": self.pdr_rows(),
            "composition": [
                {
                    "type": row.name,
                    "frames": row.frames_out,
                    "bytes": row.bytes_out,
                    "airtime_s": row.airtime_s,
                }
                for row in metrics.type_breakdown(self.store)
            ],
            "alerts": [alert.to_json_dict() for alert in self.alerts.active()],
            "server": self.server_document(),
            "drops": self.drops_document(),
        }
