"""Uplink transports between the monitoring client and the server.

Two modes, matching DESIGN.md's T3 ablation:

* :class:`OutOfBandUplink` — the paper's path: the node has a secondary
  interface (WiFi on the ESP32) and POSTs JSON batches to the server over
  the Internet.  Modelled as a lossy, delayed request/response channel;
  a lost request produces no acknowledgement and the client retries, so
  delivery is at-least-once end to end.
* :class:`InBandUplink` — telemetry rides the mesh itself as TELEMETRY
  messages addressed to a gateway node, costing LoRa airtime.  The
  :class:`GatewayBridge` attached to the gateway hands completed messages
  to the server.  Delivery is at-most-once: a batch lost in the mesh is
  gone (the client cannot afford end-to-end acks over LoRa), which is
  exactly the fidelity trade-off experiment T3 quantifies.
"""

from __future__ import annotations

import random
import socket
import urllib.error
import urllib.request
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.errors import ConfigurationError
from repro.mesh.node import DeliveredMessage, MeshNode
from repro.mesh.packet import PacketType
from repro.monitor.codec import Codec, resolve_codec
from repro.monitor.ingest import DEFAULT_NETWORK_ID, IngestResult, validate_network_id
from repro.monitor.records import RecordBatch
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # import only for annotations; avoids a mesh<->monitor import cycle
    from repro.mesh.endtoend import ReliableMessenger

ResultCallback = Callable[[bool], None]


@dataclass
class UplinkStats:
    """Per-uplink counters."""

    batches_submitted: int = 0
    batches_delivered: int = 0
    batches_lost: int = 0
    bytes_sent: int = 0
    #: Requests the server refused under backpressure (queue full).  The
    #: batch stays client-side and is retried — delivery remains
    #: at-least-once, just delayed by the server's retry-after hint.
    backpressure_rejections: int = 0


class Uplink(ABC):
    """Transport for record batches."""

    def __init__(self) -> None:
        self.stats = UplinkStats()

    @abstractmethod
    def send(self, batch: RecordBatch, on_result: ResultCallback) -> None:
        """Ship ``batch``; invoke ``on_result(ok)`` when the outcome is known
        from the *client's* point of view."""

    @abstractmethod
    def wire_size(self, batch: RecordBatch) -> int:
        """Bytes this batch occupies on this uplink's wire format."""


class OutOfBandUplink(Uplink):
    """Simulated WiFi/HTTP POST to the monitoring server.

    The server object is called directly (``ingest_json``); loss and
    latency are simulated in front of it.  A lost request surfaces to the
    client as a failed result after ``timeout_s``.
    """

    def __init__(
        self,
        sim: Simulator,
        server: "SupportsIngestJson",
        rng: random.Random,
        loss_probability: float = 0.0,
        latency_mean_s: float = 0.08,
        latency_jitter_s: float = 0.04,
        timeout_s: float = 10.0,
        codec: Union[str, Codec] = "json",
    ) -> None:
        super().__init__()
        if not (0.0 <= loss_probability <= 1.0):
            raise ConfigurationError(f"loss_probability must be 0..1, got {loss_probability}")
        if latency_mean_s < 0 or latency_jitter_s < 0 or timeout_s <= 0:
            raise ConfigurationError("latencies must be >= 0 and timeout > 0")
        self._sim = sim
        self._server = server
        self._rng = rng
        self._loss = loss_probability
        self._latency_mean = latency_mean_s
        self._jitter = latency_jitter_s
        self._timeout = timeout_s
        #: Wire encoding of the POSTed batches.  ``json`` keeps the
        #: paper's path; ``binary`` models a firmware that speaks the
        #: compact telemetry format over HTTP (the T1/T3 size ablation).
        self._codec = resolve_codec(codec)

    def wire_size(self, batch: RecordBatch) -> int:
        return len(self._codec.encode(batch))

    def _latency(self) -> float:
        return max(self._latency_mean + self._rng.uniform(-self._jitter, self._jitter), 1e-4)

    def send(self, batch: RecordBatch, on_result: ResultCallback) -> None:
        raw = self._codec.encode(batch)
        self.stats.batches_submitted += 1
        self.stats.bytes_sent += len(raw)
        if self._rng.random() < self._loss:
            # Request lost in transit: the server never sees it.
            self.stats.batches_lost += 1
            self._sim.call_in(self._timeout, lambda: on_result(False))
            return

        def deliver() -> None:
            if self._codec.name == "json":
                result = self._server.ingest_json(raw)
            else:
                # Non-JSON codecs need the negotiating server surface.
                ingest_encoded = getattr(self._server, "ingest_encoded", None)
                if ingest_encoded is None:
                    raise ConfigurationError(
                        f"server {self._server!r} cannot ingest codec "
                        f"{self._codec.name!r} (no ingest_encoded)"
                    )
                result = ingest_encoded(raw, self._codec)
            self.stats.batches_delivered += 1
            ok = bool(getattr(result, "ok", True))
            retry_after = getattr(result, "retry_after_s", None)
            if not ok and retry_after is not None:
                # Server backpressure: the batch was refused before any
                # record was stored.  Honour the retry-after hint — the
                # failure surfaces to the client no earlier than the
                # server asked, so the next interval's retry lands after
                # the queue has had time to drain.
                self.stats.backpressure_rejections += 1
                self._sim.call_in(
                    max(self._latency(), retry_after), lambda: on_result(False)
                )
                return
            if self._rng.random() < self._loss:
                # Response lost: the batch WAS ingested, but the client
                # times out and will retry — the server's per-record
                # dedup absorbs the duplicate.
                self._sim.call_in(self._timeout, lambda: on_result(False))
                return
            self._sim.call_in(self._latency(), lambda: on_result(ok))

        self._sim.call_in(self._latency(), deliver)


class InBandUplink(Uplink):
    """Telemetry over the mesh to a gateway node.

    The batch is binary-encoded and sent as a TELEMETRY message; the mesh
    transport segments it across as many LoRa frames as needed.  The
    result callback reports only *local* acceptance (a route existed and
    the frames were queued) — there is no end-to-end acknowledgement.
    """

    def __init__(self, node: MeshNode, gateway_address: int) -> None:
        super().__init__()
        if gateway_address == node.address:
            raise ConfigurationError("in-band uplink gateway cannot be the node itself")
        self._node = node
        self.gateway_address = gateway_address

    def wire_size(self, batch: RecordBatch) -> int:
        return len(batch.to_binary())

    def send(self, batch: RecordBatch, on_result: ResultCallback) -> None:
        raw = batch.to_binary()
        self.stats.batches_submitted += 1
        self.stats.bytes_sent += len(raw)
        msg_id = self._node.send_message(self.gateway_address, raw, ptype=PacketType.TELEMETRY)
        if msg_id is None:
            self.stats.batches_lost += 1
            on_result(False)
            return
        # At-most-once: locally accepted counts as done for the client.
        self.stats.batches_delivered += 1
        on_result(True)


class ReliableInBandUplink(Uplink):
    """In-band telemetry with end-to-end acknowledgement and retry.

    Uses a :class:`~repro.mesh.endtoend.ReliableMessenger` so a batch lost
    in the mesh is retried (at-least-once).  The server's per-record dedup
    absorbs duplicates from retries whose predecessor actually arrived, so
    the store converges to exactly-once.  Costs more airtime than the
    fire-and-forget :class:`InBandUplink` — the T3 bench quantifies it.
    """

    def __init__(self, messenger: "ReliableMessenger", gateway_address: int) -> None:
        super().__init__()
        if gateway_address == messenger.node.address:
            raise ConfigurationError("in-band uplink gateway cannot be the node itself")
        self._messenger = messenger
        self.gateway_address = gateway_address

    def wire_size(self, batch: RecordBatch) -> int:
        return len(batch.to_binary())

    def send(self, batch: RecordBatch, on_result: ResultCallback) -> None:
        raw = batch.to_binary()
        self.stats.batches_submitted += 1
        self.stats.bytes_sent += len(raw)

        def result(ok: bool) -> None:
            if ok:
                self.stats.batches_delivered += 1
            else:
                self.stats.batches_lost += 1
            on_result(ok)

        self._messenger.send(
            self.gateway_address, raw, ptype=PacketType.TELEMETRY, on_result=result
        )


class GatewayBridge:
    """Glue on the gateway node: completed TELEMETRY messages -> server.

    On the gateway itself telemetry short-circuits: if a
    :class:`MonitorClient` on the gateway uses an :class:`InBandUplink`
    pointing at the gateway's own address that is a configuration error;
    give the gateway an :class:`OutOfBandUplink` instead (it is the node
    with Internet connectivity).
    """

    def __init__(
        self,
        gateway: MeshNode,
        server: "SupportsIngestBinary",
        network_id: str = DEFAULT_NETWORK_ID,
    ) -> None:
        try:
            validate_network_id(network_id)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from None
        self.gateway = gateway
        self._server = server
        #: The compact binary batch spends no airtime on a network id;
        #: the bridge knows which network its gateway belongs to and
        #: attributes batches server-side.
        self.network_id = network_id
        self.batches_bridged = 0
        self.batches_rejected = 0
        gateway.on_deliver.append(self._delivered)

    def _delivered(self, message: DeliveredMessage) -> None:
        if message.ptype != PacketType.TELEMETRY:
            return
        if self.network_id != DEFAULT_NETWORK_ID:
            result = self._server.ingest_binary(message.payload, network_id=self.network_id)
        else:
            result = self._server.ingest_binary(message.payload)
        if getattr(result, "ok", True):
            self.batches_bridged += 1
        else:
            self.batches_rejected += 1


class HttpIngestClient:
    """POSTs record batches to a monitoring server over real HTTP.

    Targets the versioned network-scoped ingest route
    (``POST /api/v1/networks/<id>/ingest``) and transparently falls back
    to the legacy ``POST /api/ingest`` endpoint when talking to a
    pre-v1 server (404 on the v1 path).  The fallback only applies for
    the ``default`` network — a pre-v1 server cannot keep other
    networks separate, so misrouting there would silently mix tenants.

    Exposes the same ``ingest_json(raw)`` surface as
    :class:`~repro.monitor.server.MonitorServer`, so it can stand in
    for the direct server object behind an :class:`OutOfBandUplink` or
    any other caller of :class:`SupportsIngestJson`.
    """

    def __init__(
        self,
        base_url: str,
        network_id: str = DEFAULT_NETWORK_ID,
        timeout_s: float = 5.0,
        codec: Union[str, Codec] = "json",
    ) -> None:
        try:
            validate_network_id(network_id)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from None
        if timeout_s <= 0:
            raise ConfigurationError(f"timeout_s must be > 0, got {timeout_s}")
        self.base_url = base_url.rstrip("/")
        self.network_id = network_id
        self._timeout = timeout_s
        #: Default wire encoding for :meth:`send_batch`; negotiated on
        #: the v1 route via ``Content-Type``.
        self.codec = resolve_codec(codec)
        #: True once a 404 on the v1 route demoted us to the legacy path.
        self.legacy_mode = False
        self.posts_ok = 0
        self.posts_failed = 0

    @property
    def v1_url(self) -> str:
        return f"{self.base_url}/api/v1/networks/{self.network_id}/ingest"

    @property
    def legacy_url(self) -> str:
        return f"{self.base_url}/api/ingest"

    def _post(self, url: str, raw: bytes, content_type: str) -> int:
        request = urllib.request.Request(
            url, data=raw, headers={"Content-Type": content_type}, method="POST"
        )
        with urllib.request.urlopen(request, timeout=self._timeout) as response:
            return int(response.status)

    def ingest_json(self, raw: bytes) -> IngestResult:
        """POST one JSON-encoded batch; the result mirrors the HTTP outcome."""
        return self.ingest_encoded(raw, "json")

    def send_batch(self, batch: RecordBatch) -> IngestResult:
        """Encode ``batch`` with the configured codec and POST it."""
        return self.ingest_encoded(self.codec.encode(batch), self.codec)

    def ingest_encoded(self, raw: bytes, codec: Union[str, Codec]) -> IngestResult:
        """POST wire bytes in ``codec``'s encoding (``Content-Type`` negotiated)."""
        codec = resolve_codec(codec)
        url = self.legacy_url if self.legacy_mode else self.v1_url
        try:
            status = self._post(url, raw, codec.content_type)
        except urllib.error.HTTPError as exc:
            if (
                exc.code == 404
                and not self.legacy_mode
                and self.network_id == DEFAULT_NETWORK_ID
                and codec.name == "json"
            ):
                # Pre-v1 server: remember and retry on the legacy route.
                # The legacy endpoint is JSON-only, so other codecs
                # surface the 404 instead of misrouting.
                self.legacy_mode = True
                return self.ingest_encoded(raw, codec)
            self.posts_failed += 1
            retry_after: Optional[float] = None
            if exc.code == 503:
                header = exc.headers.get("Retry-After") if exc.headers else None
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
            return IngestResult(
                ok=False, error=f"HTTP {exc.code}", retry_after_s=retry_after
            )
        except (urllib.error.URLError, OSError) as exc:
            self.posts_failed += 1
            return IngestResult(ok=False, error=str(exc))
        self.posts_ok += 1
        return IngestResult(ok=status in (200, 202))


class UdpIngestClient:
    """Fire-and-forget telemetry datagrams to a UDP ingest transport.

    One datagram per batch, binary codec by default, no replies and no
    retries: delivery is at-most-once by design, and the server's
    sequence-gap accounting (not an ack channel) quantifies the loss.
    Suits the monitoring plane's cheapest-possible-uplink corner; use
    :class:`HttpIngestClient` when at-least-once delivery matters.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        codec: Union[str, Codec] = "binary",
    ) -> None:
        if not (0 < port < 65536):
            raise ConfigurationError(f"port must be 1..65535, got {port}")
        self.address = (host, port)
        self.codec = resolve_codec(codec)
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.datagrams_sent = 0
        self.bytes_sent = 0

    def send_batch(self, batch: RecordBatch) -> int:
        """Encode and send one batch; returns the datagram size in bytes."""
        raw = self.codec.encode(batch)
        self._socket.sendto(raw, self.address)
        self.datagrams_sent += 1
        self.bytes_sent += len(raw)
        return len(raw)

    def close(self) -> None:
        self._socket.close()

    def __enter__(self) -> "UdpIngestClient":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


class SupportsIngestJson:  # pragma: no cover - typing helper
    """Structural interface: anything with ``ingest_json(bytes)``."""

    def ingest_json(self, raw: bytes) -> object:
        raise NotImplementedError


class SupportsIngestBinary:  # pragma: no cover - typing helper
    """Structural interface: anything with ``ingest_binary(bytes)``."""

    def ingest_binary(self, raw: bytes, network_id: Optional[str] = None) -> object:
        raise NotImplementedError
