"""Campaign execution: planning, the worker pool, and resumption.

The scheduler expands a :class:`~repro.campaign.spec.CampaignSpec`,
consults the :class:`~repro.campaign.cache.ResultCache` for runs that
already exist, and drives the rest through a ``multiprocessing`` pool
(or in-process when ``workers=1`` — the two paths produce identical
bytes, which the worker-invariance tests pin down).

Completed runs are cached the moment they finish, in completion order,
so an interrupted campaign loses at most the in-flight runs; aggregation
happens only from the cache/result map in *grid* order, which is how the
report stays independent of scheduling.

This module is operator-side plumbing (pools, ETA callbacks): it is
exempt from the sim-scoped lint rules, unlike
:mod:`repro.campaign.worker` which does the actual simulating.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.campaign.aggregate import aggregate_report
from repro.campaign.cache import ResultCache
from repro.campaign.spec import CampaignSpec, RunSpec
from repro.campaign.worker import execute_run
from repro.errors import CampaignStateError

#: Called after each run completes: (run, from_cache).
ProgressCallback = Callable[[RunSpec, bool], None]


@dataclass
class CampaignPlan:
    """What a campaign would do right now, given the cache contents."""

    runs: List[RunSpec] = field(default_factory=list)
    cached: List[RunSpec] = field(default_factory=list)
    missing: List[RunSpec] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def n_cached(self) -> int:
        return len(self.cached)

    @property
    def n_missing(self) -> int:
        return len(self.missing)

    @property
    def complete(self) -> bool:
        return not self.missing


@dataclass
class RunStats:
    """What one :meth:`CampaignRunner.run` actually did."""

    total: int = 0
    computed: int = 0
    from_cache: int = 0


class CampaignRunner:
    """Executes a campaign spec against a result cache.

    Attributes:
        spec: the campaign description.
        cache: on-disk result cache (created on first write).
        workers: pool size; 1 runs in-process with no pool at all.
        progress: optional per-run completion callback.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        cache_dir: Union[str, Path],
        workers: int = 1,
        progress: Optional[ProgressCallback] = None,
        trace_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.spec = spec
        self.cache = ResultCache(cache_dir)
        self.workers = max(1, int(workers))
        self.progress = progress
        #: When set, runs whose config has ``capture_trace`` write their
        #: NDJSON captures here (side effect; cached payloads unaffected).
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.last_stats = RunStats()

    # -- planning --------------------------------------------------------------

    def plan(self) -> CampaignPlan:
        """Expand the spec and split runs into cached / missing."""
        plan = CampaignPlan()
        for run in self.spec.expand():
            plan.runs.append(run)
            if self.cache.get(run.digest) is not None:
                plan.cached.append(run)
            else:
                plan.missing.append(run)
        return plan

    # -- execution -------------------------------------------------------------

    def run(self, resume: bool = False) -> Dict[str, Any]:
        """Execute the campaign and return the aggregate report.

        With ``resume=True`` cached runs are reused and only missing ones
        execute; otherwise every run is recomputed (and re-cached).  The
        report bytes are identical either way, and for any worker count.
        """
        plan = self.plan()
        stats = RunStats(total=plan.n_runs)
        results: Dict[str, Mapping[str, Any]] = {}
        to_run: List[RunSpec] = []
        for run in plan.runs:
            payload = self.cache.get(run.digest) if resume else None
            if payload is not None:
                results[run.digest] = payload
                stats.from_cache += 1
                self._report_progress(run, from_cache=True)
            else:
                to_run.append(run)
        for digest, payload in self._execute(to_run):
            self.cache.put(digest, payload)
            results[digest] = payload
            stats.computed += 1
        self.last_stats = stats
        return aggregate_report(self.spec, results)

    def collect(self, allow_partial: bool = False) -> Dict[str, Any]:
        """Aggregate purely from the cache, running nothing.

        Raises :class:`~repro.errors.CampaignStateError` when runs are
        missing, unless ``allow_partial`` (points then aggregate over the
        replicates that exist).
        """
        plan = self.plan()
        if plan.missing and not allow_partial:
            raise CampaignStateError(
                f"campaign {self.spec.name!r}: {plan.n_missing} of {plan.n_runs} "
                "runs not cached; execute first or pass allow_partial"
            )
        results: Dict[str, Mapping[str, Any]] = {}
        for run in plan.cached:
            payload = self.cache.get(run.digest)
            if payload is not None:
                results[run.digest] = payload
        return aggregate_report(self.spec, results)

    # -- internals -------------------------------------------------------------

    def _report_progress(self, run: RunSpec, from_cache: bool) -> None:
        if self.progress is not None:
            self.progress(run, from_cache)

    def _worker_payload(self, run: RunSpec) -> Dict[str, Any]:
        """The run's payload, plus side-channel capture options."""
        payload = dict(run.to_payload())
        if self.trace_dir is not None:
            payload["trace_dir"] = str(self.trace_dir)
        return payload

    def _execute(self, to_run: List[RunSpec]):
        """Yield (digest, payload) as runs complete (order unspecified)."""
        by_digest = {run.digest: run for run in to_run}
        if self.workers == 1 or len(to_run) <= 1:
            for run in to_run:
                payload = execute_run(self._worker_payload(run))
                self._report_progress(run, from_cache=False)
                yield run.digest, payload
            return
        # fork (where available) shares the already-imported tree with the
        # children; spawn re-imports, which works too since the worker entry
        # point and its payloads are importable/picklable by construction.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else None)
        processes = min(self.workers, len(to_run))
        with context.Pool(processes=processes) as pool:
            payloads = [self._worker_payload(run) for run in to_run]
            for payload in pool.imap_unordered(execute_run, payloads):
                run = by_digest[payload["digest"]]
                self._report_progress(run, from_cache=False)
                yield payload["digest"], payload
