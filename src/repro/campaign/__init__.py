"""Deterministic parallel experiment campaigns.

A *campaign* is a declarative parameter sweep: a base
:class:`~repro.scenario.config.ScenarioConfig`, a set of override axes,
and a seed-replicate count.  The subsystem expands that spec into a grid
of fully-specified runs, executes them across a ``multiprocessing``
worker pool, and aggregates per-point metrics (mean / stdev / 95 % CI
over replicates) into a stable JSON report.

Determinism is the contract:

* every run's RNG seed derives from ``(master_seed, point_key,
  replicate)`` via SHA-256 — the same hashing discipline as
  :class:`~repro.sim.rng.RngRegistry` — so results are byte-identical
  regardless of worker count or completion order;
* results are cached on disk keyed by a content hash of the *full*
  serialized run config plus a code-version salt, making campaigns
  resumable after interruption and incremental after spec edits.

Quickstart::

    from repro.campaign import CampaignSpec, CampaignRunner

    spec = CampaignSpec(
        name="pdr_vs_size",
        base=ScenarioConfig(duration_s=600.0),
        axes={"n_nodes": [9, 16, 25]},
        replicates=3,
        master_seed=42,
    )
    report = CampaignRunner(spec, cache_dir="out/cache", workers=4).run()

or from the shell::

    repro-campaign run spec.json --workers 4 --resume --out report.json

See ``docs/CAMPAIGN.md`` for the spec file format and cache layout.
"""

from repro.campaign.aggregate import aggregate_report, ci95_halfwidth, mean, sample_stdev
from repro.campaign.cache import ResultCache
from repro.campaign.hashing import CODE_VERSION, canonical_json, config_digest, derive_seed
from repro.campaign.scheduler import CampaignPlan, CampaignRunner
from repro.campaign.spec import (
    CampaignSpec,
    RunSpec,
    config_from_dict,
    config_to_dict,
)
from repro.campaign.worker import execute_run, standard_metrics

__all__ = [
    "CODE_VERSION",
    "CampaignPlan",
    "CampaignRunner",
    "CampaignSpec",
    "ResultCache",
    "RunSpec",
    "aggregate_report",
    "canonical_json",
    "ci95_halfwidth",
    "config_digest",
    "config_from_dict",
    "config_to_dict",
    "derive_seed",
    "execute_run",
    "mean",
    "sample_stdev",
    "standard_metrics",
]
