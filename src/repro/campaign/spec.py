"""Campaign specs: a base config, override axes, and replicates.

A :class:`CampaignSpec` is the declarative description of a sweep.  It
expands (:meth:`CampaignSpec.expand`) into an ordered grid of
:class:`RunSpec` — one per (grid point x replicate) — each carrying a
fully serialized :class:`~repro.scenario.config.ScenarioConfig` with its
derived seed and the content digest that keys the result cache.

The module also owns config (de)serialization.  ``config_to_dict`` /
``config_from_dict`` round-trip every field of ``ScenarioConfig``
including the nested ``MeshConfig`` / ``WorkloadSpec`` / ``MobilitySpec``
dataclasses and the enum fields, so the cache digest covers the whole
config by construction rather than by enumeration.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Union

from repro.campaign.hashing import canonical_json, config_digest, derive_seed
from repro.errors import CampaignSpecError
from repro.mesh.config import MeshConfig
from repro.scenario.config import (
    Environment,
    MobilitySpec,
    MonitorMode,
    ScenarioConfig,
    WorkloadSpec,
)
from repro.sim.topology import Placement


# -- config (de)serialization --------------------------------------------------


def _value_to_jsonable(value: Any) -> Any:
    if isinstance(value, Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            spec_field.name: _value_to_jsonable(getattr(value, spec_field.name))
            for spec_field in dataclasses.fields(value)
        }
    return value


def config_to_dict(config: ScenarioConfig) -> Dict[str, Any]:
    """Serialize a :class:`ScenarioConfig` to a JSON-ready mapping.

    Walks the dataclass fields generically, so a field added to the
    config (or to a nested spec) is serialized — and therefore hashed —
    without anyone remembering to update a list.
    """
    return {
        spec_field.name: _value_to_jsonable(getattr(config, spec_field.name))
        for spec_field in dataclasses.fields(config)
    }


def _build_dataclass(cls: type, data: Mapping[str, Any], where: str) -> Any:
    if not isinstance(data, Mapping):
        raise CampaignSpecError(f"{where} must be a mapping, got {type(data).__name__}")
    known = {spec_field.name for spec_field in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise CampaignSpecError(f"unknown field(s) {unknown} for {where}")
    return cls(**dict(data))


def config_from_dict(data: Mapping[str, Any]) -> ScenarioConfig:
    """Rebuild a :class:`ScenarioConfig` from :func:`config_to_dict` output.

    Raises :class:`~repro.errors.CampaignSpecError` on unknown fields, so
    a typo'd axis or base key fails at spec time, not mid-campaign.
    """
    plain = dict(data)
    nested: Dict[str, Any] = {}
    if "mesh" in plain:
        nested["mesh"] = _build_dataclass(MeshConfig, plain.pop("mesh"), "mesh")
    if "workload" in plain:
        nested["workload"] = _build_dataclass(WorkloadSpec, plain.pop("workload"), "workload")
    if "mobility" in plain:
        mobility = plain.pop("mobility")
        nested["mobility"] = (
            None if mobility is None else _build_dataclass(MobilitySpec, mobility, "mobility")
        )
    for name, enum_cls in (
        ("placement", Placement),
        ("environment", Environment),
        ("monitor_mode", MonitorMode),
    ):
        if name in plain:
            try:
                nested[name] = enum_cls(plain.pop(name))
            except ValueError as exc:
                raise CampaignSpecError(str(exc)) from None
    known = {spec_field.name for spec_field in dataclasses.fields(ScenarioConfig)}
    unknown = sorted(set(plain) - known)
    if unknown:
        raise CampaignSpecError(f"unknown ScenarioConfig field(s) {unknown}")
    return ScenarioConfig(**plain, **nested)


def _apply_override(config_dict: Dict[str, Any], path: str, value: Any) -> None:
    """Set ``path`` (dotted for nested specs, e.g. ``workload.interval_s``)
    to ``value`` inside a serialized config."""
    parts = path.split(".")
    target: Any = config_dict
    for depth, part in enumerate(parts[:-1]):
        if not isinstance(target, dict) or part not in target:
            raise CampaignSpecError(f"axis {path!r}: no such config field {part!r}")
        target = target[part]
        if not isinstance(target, dict):
            joined = ".".join(parts[: depth + 1])
            raise CampaignSpecError(
                f"axis {path!r}: {joined!r} is not a nested spec (is it None? "
                "sweep the whole sub-spec as a mapping value instead)"
            )
    leaf = parts[-1]
    if leaf not in target:
        raise CampaignSpecError(f"axis {path!r}: no such config field {leaf!r}")
    target[leaf] = value


# -- the spec ------------------------------------------------------------------


SPEC_SCHEMA = "repro.campaign.spec/1"


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified run: a grid point at one replicate index."""

    point_index: int
    point_key: str
    replicate: int
    overrides: Mapping[str, Any]
    seed: int
    config_dict: Mapping[str, Any]
    digest: str

    def config(self) -> ScenarioConfig:
        return config_from_dict(self.config_dict)

    def to_payload(self) -> Dict[str, Any]:
        """Picklable/JSON-able form shipped to pool workers."""
        return {
            "point_index": self.point_index,
            "point_key": self.point_key,
            "replicate": self.replicate,
            "overrides": dict(self.overrides),
            "seed": self.seed,
            "config": dict(self.config_dict),
            "digest": self.digest,
        }


def point_key_for(overrides: Mapping[str, Any]) -> str:
    """Stable human-readable identity of a grid point.

    Rendered from the overrides in axis order with canonical-JSON values,
    e.g. ``"n_nodes=25,workload.interval_s=60.0"``.  This string feeds
    :func:`~repro.campaign.hashing.derive_seed`, so its stability is part
    of the determinism contract.
    """
    return ",".join(f"{name}={canonical_json(value)}" for name, value in overrides.items())


@dataclass
class CampaignSpec:
    """Declarative sweep: base config + override axes + replicates.

    Attributes:
        name: campaign identity, used in reports and file names.
        base: the :class:`ScenarioConfig` every point starts from (a
            partial mapping is merged over config defaults).
        axes: ordered mapping of config field (dotted for nested specs)
            to the list of values to sweep.  The grid is the cartesian
            product in insertion order.
        replicates: seed replicates per grid point.
        master_seed: root of every derived per-run seed.
    """

    name: str
    base: Union[ScenarioConfig, Mapping[str, Any]] = field(default_factory=ScenarioConfig)
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    replicates: int = 1
    master_seed: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignSpecError("campaign name must be non-empty")
        if self.replicates < 1:
            raise CampaignSpecError(f"replicates must be >= 1, got {self.replicates}")
        if isinstance(self.base, ScenarioConfig):
            self._base_dict = config_to_dict(self.base)
        else:
            self._base_dict = config_to_dict(ScenarioConfig())
            for key, value in dict(self.base).items():
                if (
                    isinstance(value, Mapping)
                    and key in self._base_dict
                    and isinstance(self._base_dict[key], dict)
                ):
                    merged = dict(self._base_dict[key])
                    merged.update(value)
                    value = merged
                _apply_override(self._base_dict, key, value)
            config_from_dict(self._base_dict)  # validate merged base eagerly
        axes: Dict[str, List[Any]] = {}
        for axis, values in dict(self.axes).items():
            if axis == "seed":
                raise CampaignSpecError(
                    "'seed' cannot be an axis: per-run seeds derive from "
                    "master_seed x point x replicate (set master_seed instead)"
                )
            values = list(values)
            if not values:
                raise CampaignSpecError(f"axis {axis!r} has no values")
            if len(values) != len({canonical_json(v) for v in values}):
                raise CampaignSpecError(f"axis {axis!r} has duplicate values")
            axes[axis] = values
        self.axes = axes

    # -- derived shape ---------------------------------------------------------

    @property
    def n_points(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    @property
    def n_runs(self) -> int:
        return self.n_points * self.replicates

    def points(self) -> Iterator[Dict[str, Any]]:
        """Yield each grid point's overrides, in grid order (cartesian
        product of the axes in insertion order, last axis fastest)."""
        names = list(self.axes.keys())
        if not names:
            yield {}
            return
        for combo in itertools.product(*(self.axes[name] for name in names)):
            yield dict(zip(names, combo))

    def expand(self) -> List[RunSpec]:
        """The full ordered grid of runs (validates every point config)."""
        runs: List[RunSpec] = []
        for point_index, overrides in enumerate(self.points()):
            key = point_key_for(overrides)
            point_dict = json.loads(canonical_json(self._base_dict))
            for path, value in overrides.items():
                _apply_override(point_dict, path, value)
            for replicate in range(self.replicates):
                seed = derive_seed(self.master_seed, key, replicate)
                run_dict = dict(point_dict)
                run_dict["seed"] = seed
                config_from_dict(run_dict)  # validate: bad combos fail at expand time
                runs.append(
                    RunSpec(
                        point_index=point_index,
                        point_key=key,
                        replicate=replicate,
                        overrides=overrides,
                        seed=seed,
                        config_dict=run_dict,
                        digest=config_digest(run_dict),
                    )
                )
        return runs

    # -- (de)serialization -----------------------------------------------------

    def base_dict(self) -> Dict[str, Any]:
        """The merged, fully-populated base config as a mapping."""
        return json.loads(canonical_json(self._base_dict))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "base": self.base_dict(),
            "axes": {name: list(values) for name, values in self.axes.items()},
            "replicates": self.replicates,
            "master_seed": self.master_seed,
        }

    def spec_digest(self) -> str:
        """Content hash of the whole spec (stamped into reports)."""
        return config_digest(self.to_dict(), salt="spec")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        if not isinstance(data, Mapping):
            raise CampaignSpecError(f"campaign spec must be a mapping, got {type(data).__name__}")
        schema = data.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise CampaignSpecError(f"unsupported campaign spec schema {schema!r}")
        unknown = sorted(set(data) - {"schema", "name", "base", "axes", "replicates", "master_seed"})
        if unknown:
            raise CampaignSpecError(f"unknown campaign spec key(s) {unknown}")
        try:
            name = data["name"]
        except KeyError:
            raise CampaignSpecError("campaign spec needs a 'name'") from None
        return cls(
            name=name,
            base=data.get("base", {}),
            axes=data.get("axes", {}),
            replicates=int(data.get("replicates", 1)),
            master_seed=int(data.get("master_seed", 1)),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignSpec":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise CampaignSpecError(f"cannot read campaign spec {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise CampaignSpecError(f"campaign spec {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
