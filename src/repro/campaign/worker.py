"""Campaign worker: executes one fully-specified run, returns metrics.

This module runs *inside pool workers* and on the in-process fast path.
It is simulation-scoped code: everything here advances on simulated time
and derived seeds — wall-clock reads or unseeded RNG would break the
byte-identical-across-worker-counts contract, so reprolint applies RL001
to this module (see ``repro.lint.context``), unlike the scheduler and
progress modules around it.

The function shipped across the process boundary
(:func:`execute_run`) takes and returns plain JSON-able dicts, so it is
picklable under both fork and spawn start methods and its output can be
written to the result cache verbatim.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Mapping, Optional

from pathlib import Path

from repro.campaign.spec import config_from_dict
from repro.obs.ndjson import export_trace
from repro.scenario.results import ScenarioResult
from repro.scenario.runner import run_scenario


def _export_captures(result: ScenarioResult, trace_dir: str, digest: str) -> None:
    """Write the run's trace + span captures under ``trace_dir``."""
    out = Path(trace_dir)
    out.mkdir(parents=True, exist_ok=True)
    config = result.config
    meta = {
        "digest": digest,
        "seed": config.seed,
        "n_nodes": config.n_nodes,
        "protocol": config.protocol,
    }
    export_trace(result.trace, out / f"{digest}.trace.ndjson", meta=meta)
    if result.profiler is not None:
        result.profiler.export_ndjson(out / f"{digest}.spans.ndjson")


def _finite(value: float) -> Optional[float]:
    """NaN/inf -> None: reports are strict JSON and NaN never aggregates."""
    number = float(value)
    return number if math.isfinite(number) else None


def standard_metrics(result: ScenarioResult) -> Dict[str, Optional[float]]:
    """The fixed per-run metric set every campaign records.

    Only scalars derived from the simulation state — deterministic given
    the config — belong here.  Keys are stable: reports aggregate them by
    name and the benches index into them.
    """
    config = result.config
    truth = result.truth
    n_nodes = config.n_nodes
    wall_s = config.warmup_s + config.duration_s
    gateway = config.gateway
    route_metrics = [
        node.routes.metric(gateway)
        for node in result.nodes.values()
        if node.address != gateway and node.routes.metric(gateway) is not None
    ]
    mean_route_metric = (
        sum(route_metrics) / len(route_metrics) if route_metrics else math.nan
    )
    batches_sent = sum(client.stats.batches_sent for client in result.clients.values())
    energy = result.energy_by_node()
    metrics: Dict[str, float] = {
        "msg_pdr": truth.msg_pdr,
        "frag_pdr": truth.frag_pdr,
        "mean_latency_s": truth.mean_latency_s,
        "msg_sent": float(truth.total_msg_sent),
        "msg_delivered": float(truth.total_msg_delivered),
        "phy_tx": float(truth.phy_tx),
        "phy_collisions": float(truth.phy_collisions),
        "mean_route_metric": mean_route_metric,
        "airtime_total_s": result.total_mesh_airtime_s(),
        "airtime_per_node_s": result.total_mesh_airtime_s() / n_nodes,
        "mesh_tx_bytes": float(result.total_mesh_tx_bytes()),
        "uplink_bytes_total": float(result.uplink_bytes_total()),
        "uplink_bytes_per_node_per_s": result.uplink_bytes_total() / wall_s / n_nodes,
        "batches_sent": float(batches_sent),
        "batches_per_node_per_h": batches_sent / (wall_s / 3600.0) / n_nodes,
        "records_captured": float(result.telemetry_records_captured()),
        "records_stored": float(result.telemetry_records_stored()),
        "telemetry_delivery_ratio": result.telemetry_delivery_ratio(),
        "energy_mean_mah": sum(energy.values()) / n_nodes if energy else math.nan,
    }
    return {name: _finite(value) for name, value in metrics.items()}


def execute_run(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Run one grid point replicate described by a :class:`RunSpec` payload.

    Returns the cache-ready result payload (identity fields + metrics).

    When the payload carries a ``trace_dir`` (scheduler-side opt-in) and
    the config enables ``capture_trace``, the run's NDJSON captures are
    written as a side effect — ``<digest>.ndjson`` (trace) and
    ``<digest>.spans.ndjson`` (span profile).  The returned payload never
    includes ``trace_dir``, so cached result bytes stay identical whether
    or not captures were requested.
    """
    config = config_from_dict(payload["config"])
    with run_scenario(config) as result:
        metrics = standard_metrics(result)
        trace_dir = payload.get("trace_dir")
        if trace_dir is not None and config.capture_trace:
            _export_captures(result, str(trace_dir), str(payload["digest"]))
    return {
        "point_index": payload["point_index"],
        "point_key": payload["point_key"],
        "replicate": payload["replicate"],
        "seed": payload["seed"],
        "digest": payload["digest"],
        "config": dict(payload["config"]),
        "metrics": metrics,
    }
