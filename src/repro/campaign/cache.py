"""On-disk result cache keyed by full-config content digests.

Layout (two-level fan-out keeps directories small on big campaigns)::

    <root>/
      ab/
        ab12...ef.json      one completed run (config + metrics)

Each entry is written atomically (temp file + ``os.replace``), so a
campaign killed mid-write never leaves a truncated entry behind — the
next ``--resume`` simply recomputes that run.  Entries are self-checking:
a payload whose recorded digest or schema does not match is treated as a
miss rather than served stale.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

CACHE_SCHEMA = "repro.campaign.cache/1"


class ResultCache:
    """Digest-addressed store of per-run metric payloads."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def has(self, digest: str) -> bool:
        return self.path_for(digest).is_file()

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``digest``, or None on miss/corruption."""
        path = self.path_for(digest)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != CACHE_SCHEMA or payload.get("digest") != digest:
            return None
        return payload

    def put(self, digest: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``digest``."""
        payload = dict(payload)
        payload["schema"] = CACHE_SCHEMA
        payload["digest"] = digest
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{digest[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                json.dump(payload, tmp, sort_keys=True, indent=2, allow_nan=False)
                tmp.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def digests(self) -> Iterator[str]:
        """All digests currently cached (order unspecified)."""
        if not self.root.is_dir():
            return
        for entry in self.root.glob("*/*.json"):
            yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())
