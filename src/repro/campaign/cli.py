"""``repro-campaign`` — run, inspect and report experiment campaigns.

Subcommands::

    repro-campaign run    SPEC.json [--workers N] [--resume] [--out FILE]
    repro-campaign status SPEC.json
    repro-campaign report SPEC.json [--allow-partial] [--out FILE]

``run`` executes the campaign (optionally resuming from the cache) and
emits the aggregate report; ``status`` says how much of the grid is
cached; ``report`` aggregates from the cache without running anything.
All three take ``--cache-dir`` (default ``.campaign-cache``) and
``--json`` for machine-readable output.

Exit codes: 0 success, 1 campaign/state error, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.campaign.aggregate import render_report_json
from repro.campaign.hashing import canonical_json
from repro.campaign.progress import ProgressReporter
from repro.campaign.scheduler import CampaignPlan, CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.errors import ReproError

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2

#: headline metrics shown in the text table (full set lives in the JSON)
_TABLE_METRICS = (
    ("msg_pdr", "msg_pdr"),
    ("mean_latency_s", "latency_s"),
    ("airtime_per_node_s", "airtime/node_s"),
    ("uplink_bytes_per_node_per_s", "uplink_B/s/node"),
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", help="campaign spec JSON file")
    parser.add_argument(
        "--cache-dir", default=".campaign-cache",
        help="result cache directory (default: %(default)s)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON on stdout"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="deterministic parallel experiment sweeps with resumable caching",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute the campaign and report")
    _add_common(run)
    run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default: %(default)s; results are identical "
        "for any value)",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="reuse cached runs and compute only what is missing",
    )
    run.add_argument("--out", help="write the aggregate report JSON to this file")
    run.add_argument(
        "--quiet", action="store_true", help="suppress progress/ETA lines"
    )
    run.add_argument(
        "--trace-dir",
        help="write per-run NDJSON flight-recorder captures here (only runs "
        "whose config sets capture_trace, e.g. via an axis, produce files; "
        "inspect them with repro-trace)",
    )

    status = sub.add_parser("status", help="show cached vs missing runs")
    _add_common(status)

    report = sub.add_parser("report", help="aggregate from the cache only")
    _add_common(report)
    report.add_argument(
        "--allow-partial", action="store_true",
        help="aggregate whatever is cached instead of failing on gaps",
    )
    report.add_argument("--out", help="write the aggregate report JSON to this file")
    return parser


# -- rendering -----------------------------------------------------------------


def _format_stat(stats: Optional[Mapping[str, Any]]) -> str:
    if not stats or stats.get("mean") is None:
        return "-"
    mean = stats["mean"]
    ci95 = stats.get("ci95")
    if ci95 is not None:
        return f"{mean:.4g}±{ci95:.2g}"
    return f"{mean:.4g}"


def render_report_text(report: Mapping[str, Any]) -> str:
    """Fixed-width table of headline metrics, one row per grid point."""
    headers = ["point", "n"] + [label for _, label in _TABLE_METRICS]
    rows: List[List[str]] = []
    for point in report["points"]:
        row = [point["key"] or "(base)", str(point["replicates"])]
        for metric, _ in _TABLE_METRICS:
            row.append(_format_stat(point["metrics"].get(metric)))
        rows.append(row)
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        f"campaign {report['campaign']}: {report['n_points']} points x "
        f"{report['replicates']} replicates = {report['n_runs']} runs "
        f"({report['n_runs_aggregated']} aggregated)",
        f"spec digest {report['spec_digest'][:16]}  code {report['code_version']}",
        "",
        " | ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def _status_payload(spec: CampaignSpec, plan: CampaignPlan) -> Dict[str, Any]:
    return {
        "campaign": spec.name,
        "spec_digest": spec.spec_digest(),
        "n_points": spec.n_points,
        "replicates": spec.replicates,
        "n_runs": plan.n_runs,
        "cached": plan.n_cached,
        "missing": plan.n_missing,
        "complete": plan.complete,
    }


def _write_report(report: Mapping[str, Any], out: Optional[str], as_json: bool) -> None:
    rendered = render_report_json(report)
    if out:
        Path(out).write_text(rendered, encoding="utf-8")
    if as_json:
        sys.stdout.write(rendered)
    else:
        print(render_report_text(report))
        if out:
            print(f"report written to {out}")


# -- commands ------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    spec = CampaignSpec.from_file(args.spec)
    reporter = ProgressReporter(
        total=spec.n_runs, enabled=not args.quiet and not args.json
    )
    runner = CampaignRunner(
        spec,
        cache_dir=args.cache_dir,
        workers=args.workers,
        progress=lambda run, from_cache: reporter.update(from_cache),
        trace_dir=args.trace_dir,
    )
    reporter.start()
    try:
        report = runner.run(resume=args.resume)
    finally:
        reporter.finish()
    stats = runner.last_stats
    if not args.json:
        print(
            f"executed {stats.computed} run(s), reused {stats.from_cache} cached, "
            f"workers={runner.workers}"
        )
    _write_report(report, args.out, args.json)
    return EXIT_OK


def _cmd_status(args: argparse.Namespace) -> int:
    spec = CampaignSpec.from_file(args.spec)
    plan = CampaignRunner(spec, cache_dir=args.cache_dir).plan()
    payload = _status_payload(spec, plan)
    if args.json:
        print(canonical_json(payload))
    else:
        pct = 100.0 * plan.n_cached / plan.n_runs if plan.n_runs else 100.0
        print(
            f"campaign {spec.name}: {spec.n_points} points x {spec.replicates} "
            f"replicates = {plan.n_runs} runs; cached {plan.n_cached}, "
            f"missing {plan.n_missing} ({pct:.1f}% complete)"
        )
    return EXIT_OK


def _cmd_report(args: argparse.Namespace) -> int:
    spec = CampaignSpec.from_file(args.spec)
    runner = CampaignRunner(spec, cache_dir=args.cache_dir)
    report = runner.collect(allow_partial=args.allow_partial)
    _write_report(report, args.out, args.json)
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {"run": _cmd_run, "status": _cmd_status, "report": _cmd_report}
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"repro-campaign: error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
