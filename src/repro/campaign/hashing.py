"""Content hashing and seed derivation for campaign runs.

Two hashes carry the subsystem's determinism contract:

* :func:`derive_seed` maps ``(master_seed, point_key, replicate)`` to the
  scenario seed for one run, with the same SHA-256 discipline as
  :class:`~repro.sim.rng.RngRegistry` — adding a grid point or a
  replicate never perturbs the seeds of existing ones.
* :func:`config_digest` keys the on-disk result cache by the *full*
  serialized run config plus a code-version salt.  Unlike a
  hand-maintained tuple of "the fields that matter", a whole-config hash
  cannot silently miss a newly added field: two configs collide only if
  every serialized field is equal.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Union

#: Salt mixed into every cache digest.  Bump when simulator semantics
#: change in a way that invalidates previously cached metrics (a new
#: PHY model, a changed MAC default, ...) — the whole cache then reads
#: as cold instead of serving stale results.
CODE_VERSION = "repro-campaign/1"


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to its one canonical JSON form.

    Sorted keys and fixed separators make the encoding injective over
    JSON-representable values, so it is safe to hash and to compare
    byte-for-byte.  ``allow_nan=False`` keeps NaN/Infinity (whose JSON
    spellings are non-standard) out of reports and digests entirely.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=True, allow_nan=False
    )


def config_digest(config: Union[Mapping[str, Any], Any], salt: str = CODE_VERSION) -> str:
    """Hex digest keying the result cache for one fully-specified run.

    Accepts either an already-serialized config mapping or a
    :class:`~repro.scenario.config.ScenarioConfig` (serialized via
    :func:`~repro.campaign.spec.config_to_dict`).
    """
    if not isinstance(config, Mapping):
        from repro.campaign.spec import config_to_dict

        config = config_to_dict(config)
    payload = canonical_json({"config": config, "salt": salt})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def derive_seed(master_seed: int, point_key: str, replicate: int) -> int:
    """Deterministic per-run scenario seed.

    The derived seed depends only on the identifying triple, never on
    scheduling, worker count, or the presence of other grid points.
    """
    material = f"{master_seed}:{point_key}:r{replicate}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    # 63 bits keeps the seed a positive "small" int on every platform.
    return int.from_bytes(digest[:8], "big") >> 1
