"""Progress / ETA reporting for campaign execution.

This is operator-facing plumbing, not simulation code: it reads the
host's monotonic clock to estimate completion, which is exactly what
RL001 bans from simulation-scoped modules.  The lint scoping therefore
exempts this module (and the scheduler) while holding
``repro.campaign.worker`` to the sim rules — nothing rendered here may
feed back into results.

Output goes through ``stream.write`` (carriage-return overwrite, final
newline on :meth:`finish`), so library code stays print-free per RL005.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO


def format_eta(seconds: float) -> str:
    """``73.4`` -> ``"1m13s"`` (coarse: operators watch, machines don't)."""
    if seconds < 0 or not seconds == seconds:  # negative or NaN
        return "?"
    whole = int(round(seconds))
    if whole < 60:
        return f"{whole}s"
    if whole < 3600:
        return f"{whole // 60}m{whole % 60:02d}s"
    return f"{whole // 3600}h{(whole % 3600) // 60:02d}m"


class ProgressReporter:
    """Renders ``[done/total] pct cached:n elapsed eta`` lines in place.

    Attributes:
        total: run count the campaign expands to.
        stream: where lines go (default stderr, so piped report JSON on
            stdout stays clean).
        clock: injected monotonic clock (tests pass a fake).
    """

    def __init__(
        self,
        total: int,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.monotonic,
        enabled: bool = True,
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.enabled = enabled
        self.done = 0
        self.cached = 0
        self._started_at: Optional[float] = None
        self._computed_since_start = 0

    def start(self) -> None:
        self._started_at = self.clock()
        self._render()

    def update(self, from_cache: bool) -> None:
        """Record one completed run (cache hit or fresh computation)."""
        if self._started_at is None:
            self.start()
        self.done += 1
        if from_cache:
            self.cached += 1
        else:
            self._computed_since_start += 1
        self._render()

    def finish(self) -> None:
        if self.enabled and self._started_at is not None:
            self.stream.write("\n")
            self.stream.flush()

    # -- rendering -------------------------------------------------------------

    def _eta_s(self) -> Optional[float]:
        if self._started_at is None or self._computed_since_start == 0:
            return None
        elapsed = self.clock() - self._started_at
        remaining = self.total - self.done
        return elapsed / self._computed_since_start * remaining

    def _render(self) -> None:
        if not self.enabled:
            return
        elapsed = 0.0 if self._started_at is None else self.clock() - self._started_at
        pct = 100.0 * self.done / self.total if self.total else 100.0
        eta = self._eta_s()
        line = (
            f"\r[{self.done}/{self.total}] {pct:5.1f}%  cached:{self.cached}  "
            f"elapsed {format_eta(elapsed)}  eta {format_eta(eta) if eta is not None else '--'}"
        )
        self.stream.write(line)
        self.stream.flush()
