"""Replicate aggregation: mean / stdev / 95 % CI and the stable report.

The aggregate report is the campaign's product.  Its bytes must depend
only on the spec and the per-run metrics — never on worker count,
completion order, wall-clock, or host — so equality of two report files
is the worker-invariance test.  That is why this module sorts nothing at
render time by non-deterministic keys: points appear in grid order,
metrics and JSON keys in sorted order, floats via Python's shortest
round-trip ``repr`` (what ``json.dumps`` emits).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.campaign.hashing import CODE_VERSION

REPORT_SCHEMA = "repro.campaign.report/1"

#: Two-tailed 95 % Student-t critical values by degrees of freedom.
#: Replicate counts are small (2..30ish), where the normal 1.96 badly
#: understates the interval; beyond the table the normal value is used.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)
_Z95 = 1.96


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of no values")
    return sum(values) / len(values)


def sample_stdev(values: Sequence[float]) -> float:
    """Unbiased (n-1) sample standard deviation; needs n >= 2."""
    count = len(values)
    if count < 2:
        raise ValueError("sample stdev needs at least two values")
    center = mean(values)
    return math.sqrt(sum((value - center) ** 2 for value in values) / (count - 1))


def t95(df: int) -> float:
    """95 % two-tailed Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    return _T95[df - 1] if df <= len(_T95) else _Z95


def ci95_halfwidth(values: Sequence[float]) -> float:
    """Half-width of the 95 % confidence interval on the mean."""
    count = len(values)
    if count < 2:
        raise ValueError("a confidence interval needs at least two values")
    return t95(count - 1) * sample_stdev(values) / math.sqrt(count)


def metric_stats(values: Sequence[Optional[float]]) -> Dict[str, Any]:
    """Aggregate one metric over a point's replicates.

    ``None`` entries (a metric undefined for that run, e.g. latency with
    no deliveries) are excluded; ``n`` records how many remained.
    """
    present = [value for value in values if value is not None]
    stats: Dict[str, Any] = {"n": len(present)}
    if not present:
        stats.update(mean=None, stdev=None, ci95=None, min=None, max=None)
        return stats
    stats["mean"] = mean(present)
    stats["min"] = min(present)
    stats["max"] = max(present)
    if len(present) >= 2:
        stats["stdev"] = sample_stdev(present)
        stats["ci95"] = ci95_halfwidth(present)
    else:
        stats["stdev"] = None
        stats["ci95"] = None
    return stats


def aggregate_report(spec: Any, payloads: Mapping[str, Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold per-run payloads (keyed by digest) into the campaign report.

    ``spec`` is a :class:`~repro.campaign.spec.CampaignSpec`; ``payloads``
    maps run digest -> cache payload.  Every run the spec expands to must
    be present — partial reports are composed by the caller filtering the
    expansion first.
    """
    runs = spec.expand()
    by_point: Dict[str, List[Mapping[str, Any]]] = {}
    point_order: List[str] = []
    point_overrides: Dict[str, Mapping[str, Any]] = {}
    for run in runs:
        if run.point_key not in by_point:
            by_point[run.point_key] = []
            point_order.append(run.point_key)
            point_overrides[run.point_key] = run.overrides
        payload = payloads.get(run.digest)
        if payload is not None:
            by_point[run.point_key].append(payload)
    points = []
    for key in point_order:
        replicate_payloads = sorted(by_point[key], key=lambda p: p["replicate"])
        metric_names = sorted(
            {name for payload in replicate_payloads for name in payload["metrics"]}
        )
        points.append(
            {
                "key": key,
                "overrides": dict(point_overrides[key]),
                "replicates": len(replicate_payloads),
                "run_digests": [payload["digest"] for payload in replicate_payloads],
                "metrics": {
                    name: metric_stats(
                        [payload["metrics"].get(name) for payload in replicate_payloads]
                    )
                    for name in metric_names
                },
            }
        )
    return {
        "schema": REPORT_SCHEMA,
        "campaign": spec.name,
        "code_version": CODE_VERSION,
        "spec_digest": spec.spec_digest(),
        "master_seed": spec.master_seed,
        "axes": {name: list(values) for name, values in spec.axes.items()},
        "replicates": spec.replicates,
        "n_points": spec.n_points,
        "n_runs": spec.n_runs,
        "n_runs_aggregated": sum(point["replicates"] for point in points),
        "points": points,
    }


def render_report_json(report: Mapping[str, Any]) -> str:
    """The one canonical byte rendering of a report (trailing newline)."""
    return json.dumps(report, sort_keys=True, indent=2, allow_nan=False) + "\n"
