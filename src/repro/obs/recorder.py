"""Packet flight recorder: causal lifecycle reconstruction from the trace.

The :class:`FlightRecorder` subscribes to the simulation's ground-truth
:class:`~repro.sim.trace.TraceLog` and stitches the flat event stream back
into **per-message lifecycles**: origin → fragment transmissions → hop
custody transfers → delivery, or a terminal verdict explaining *why* the
message never arrived.

Identity model (mirrors the wire):

* a message is ``(origin, msg_id)`` — msg_ids are per-origin sequence
  numbers carried in the fragment header;
* a fragment frame is ``(src, packet_id)`` — ``packet_id`` is assigned at
  the origin and **preserved across hops**, so every retransmission and
  relay of the same fragment maps back to one :class:`FragmentTrace`;
* a physical transmission is ``tx_id`` — the channel stamps the packet
  identity onto ``phy.tx``, and the recorder carries it over to the
  ``phy.rx`` / ``phy.collision`` / ``phy.below_sensitivity`` events that
  share the tx_id.

Terminal verdicts (the drop-reason taxonomy):

``delivered``, ``collision``, ``no_route``, ``retry_exhausted``,
``duty_cycle``, ``ttl``, ``node_down``, ``queue_full`` and ``in_flight``
(the message was still queued somewhere when the simulation ended — a
real state, not an unknown).  Verdict inference prefers the *proximate*
cause: the latest piece of evidence before the message went silent.

The recorder is pure bookkeeping on trace events — it reads no clocks and
owns no RNG, so attaching it never perturbs the simulation.  Detached, it
costs nothing (zero-overhead contract benchmarked by
``benchmarks/bench_o1_trace_overhead.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.mesh.addressing import BROADCAST
from repro.sim.trace import TraceEvent, TraceLog, TraceSubscription

#: Terminal verdicts, in display order.
VERDICT_DELIVERED = "delivered"
VERDICT_COLLISION = "collision"
VERDICT_NO_ROUTE = "no_route"
VERDICT_RETRY_EXHAUSTED = "retry_exhausted"
VERDICT_DUTY_CYCLE = "duty_cycle"
VERDICT_TTL = "ttl"
VERDICT_NODE_DOWN = "node_down"
VERDICT_QUEUE_FULL = "queue_full"
VERDICT_IN_FLIGHT = "in_flight"

ALL_VERDICTS: Tuple[str, ...] = (
    VERDICT_DELIVERED,
    VERDICT_COLLISION,
    VERDICT_NO_ROUTE,
    VERDICT_RETRY_EXHAUSTED,
    VERDICT_DUTY_CYCLE,
    VERDICT_TTL,
    VERDICT_NODE_DOWN,
    VERDICT_QUEUE_FULL,
    VERDICT_IN_FLIGHT,
)

#: Raw MAC/mesh drop reasons → taxonomy verdicts.  ``ack_timeout`` maps to
#: retry_exhausted by default but is *refined* by :meth:`FlightRecorder.verdict`
#: (collision at the next hop, or a dead next hop, are more proximate causes).
_REASON_MAP: Dict[str, str] = {
    "queue_full": VERDICT_QUEUE_FULL,
    "csma_exhausted": VERDICT_RETRY_EXHAUSTED,
    "ack_timeout": VERDICT_RETRY_EXHAUSTED,
    "duty_cycle": VERDICT_DUTY_CYCLE,
    "stopped": VERDICT_NODE_DOWN,
    "no_route": VERDICT_NO_ROUTE,
    "no_route_forward": VERDICT_NO_ROUTE,
    "ttl": VERDICT_TTL,
    "ttl_exceeded": VERDICT_TTL,
}


@dataclass(frozen=True)
class TimelineEntry:
    """One step in a message's reconstructed causal timeline."""

    time: float
    node: Optional[int]
    what: str
    detail: str = ""

    def render(self) -> str:
        node = f"n{self.node}" if self.node is not None else "-"
        line = f"t={self.time:10.3f}  {node:>5}  {self.what}"
        if self.detail:
            line += f"  {self.detail}"
        return line


@dataclass
class _TxAttempt:
    """One physical transmission of a fragment."""

    tx_id: int
    time: float
    sender: int
    next_hop: Optional[int]
    #: outcomes keyed by receiving node: "rx" | "collision" | "below_sensitivity" | "rx_missed"
    outcomes: Dict[int, str] = field(default_factory=dict)
    #: receivers folded into an aggregated ``phy.below_sensitivity`` event
    #: (node=None, count=N) when the channel traces at fleet scale.
    below_count: int = 0


@dataclass
class FragmentTrace:
    """Lifecycle of one fragment frame, across every hop and retry."""

    src: int
    packet_id: int
    msg_id: Optional[int] = None
    seg_index: int = 0
    seg_total: int = 1
    dst: Optional[int] = None
    origin_time: Optional[float] = None
    attempts: List[_TxAttempt] = field(default_factory=list)
    #: (time, node, raw_reason, next_hop) for every mac/mesh drop of this frame.
    drops: List[Tuple[float, int, str, Optional[int]]] = field(default_factory=list)
    #: custody chain: (time, node) — origin, then each forwarding relay.
    custody: List[Tuple[float, int]] = field(default_factory=list)
    #: (time, node) for each mesh.frag_deliver at a destination.
    delivers: List[Tuple[float, int]] = field(default_factory=list)

    def last_attempt(self) -> Optional[_TxAttempt]:
        return self.attempts[-1] if self.attempts else None


@dataclass
class MessageTrace:
    """Lifecycle of one application message."""

    origin: int
    msg_id: int
    dst: int
    ptype: int = 0
    size: int = 0
    n_fragments: int = 1
    sent_at: float = 0.0
    #: True when the origin refused the send outright (no route).
    refused: bool = False
    refused_reason: Optional[str] = None
    delivered_at: Optional[float] = None
    deliver_node: Optional[int] = None
    fragment_ids: List[int] = field(default_factory=list)
    #: end-to-end retry links (ReliableMessenger): msg_id of the attempt
    #: this one replaced, and the one that replaced it.
    retry_of: Optional[int] = None
    retried_by: Optional[int] = None
    e2e_acked: bool = False
    e2e_gave_up: bool = False

    @property
    def trace_id(self) -> str:
        return f"{self.origin}:{self.msg_id}"

    @property
    def delivered(self) -> bool:
        return self.delivered_at is not None


@dataclass
class LinkStats:
    """Unicast frame accounting for one directed link."""

    tx: int = 0
    rx: int = 0
    collisions: int = 0

    @property
    def loss_rate(self) -> float:
        return 1.0 - (self.rx / self.tx) if self.tx else 0.0


class FlightRecorder:
    """Reconstructs packet lifecycles from the ground-truth trace stream.

    Attach to a live :class:`TraceLog` (``recorder.attach(trace)``) or feed
    replayed events (``recorder.observe(event)`` /
    ``recorder.consume(events)``) — e.g. from an NDJSON capture.
    """

    def __init__(self) -> None:
        self._messages: Dict[Tuple[int, int], MessageTrace] = {}
        self._fragments: Dict[Tuple[int, int], FragmentTrace] = {}
        #: (src, packet_id) → (origin, msg_id) once frag_origin is seen.
        self._frag_to_msg: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: tx_id → the fragment (or None for non-fragment frames) + attempt.
        self._tx_attempt: Dict[int, _TxAttempt] = {}
        self._tx_fragment: Dict[int, Optional[Tuple[int, int]]] = {}
        self._links: Dict[Tuple[int, int], LinkStats] = {}
        self._forwards: Dict[int, int] = {}
        #: raw drop tallies (reason / node / link) across *all* frames.
        self._drops_by_reason: Dict[str, int] = {}
        self._drops_by_node: Dict[int, int] = {}
        self._drops_by_link: Dict[str, int] = {}
        #: node → list of (fail_time, recover_time_or_None)
        self._downtime: Dict[int, List[Tuple[float, Optional[float]]]] = {}
        self._subscription: Optional[TraceSubscription] = None
        self._events_seen = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, trace: TraceLog) -> TraceSubscription:
        """Subscribe to a live trace; returns the subscription handle."""
        self._subscription = trace.subscribe(self.observe)
        return self._subscription

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.unsubscribe()
            self._subscription = None

    def consume(self, events: Iterable[TraceEvent]) -> int:
        """Feed a batch of replayed events; returns how many were consumed."""
        n = 0
        for event in events:
            self.observe(event)
            n += 1
        return n

    # -- event ingestion ------------------------------------------------------

    def observe(self, event: TraceEvent) -> None:
        """Trace listener: dispatch one ground-truth event."""
        self._events_seen += 1
        kind = event.kind
        if kind.startswith("phy."):
            self._observe_phy(event)
        elif kind.startswith("mesh."):
            self._observe_mesh(event)
        elif kind == "mac.drop":
            self._observe_mac_drop(event)
        elif kind.startswith("e2e."):
            self._observe_e2e(event)
        elif kind == "node.fail":
            if event.node is not None:
                self._downtime.setdefault(event.node, []).append((event.time, None))
        elif kind == "node.recover":
            if event.node is not None:
                spans = self._downtime.get(event.node)
                if spans and spans[-1][1] is None:
                    spans[-1] = (spans[-1][0], event.time)

    def _observe_mesh(self, event: TraceEvent) -> None:
        kind, data, node = event.kind, event.data, event.node
        if kind == "mesh.origin" and node is not None:
            msg = MessageTrace(
                origin=node,
                msg_id=int(data["msg_id"]),
                dst=int(data.get("dst", BROADCAST)),
                ptype=int(data.get("ptype", 0)),
                size=int(data.get("size", 0)),
                n_fragments=int(data.get("n_fragments", 1)),
                sent_at=event.time,
            )
            self._messages[(msg.origin, msg.msg_id)] = msg
        elif kind == "mesh.origin_refused" and node is not None:
            msg = MessageTrace(
                origin=node,
                msg_id=int(data["msg_id"]),
                dst=int(data.get("dst", BROADCAST)),
                ptype=int(data.get("ptype", 0)),
                size=int(data.get("size", 0)),
                sent_at=event.time,
                refused=True,
                refused_reason=str(data.get("reason", "no_route")),
            )
            self._messages[(msg.origin, msg.msg_id)] = msg
        elif kind == "mesh.frag_origin" and node is not None and "msg_id" in data:
            packet_id = int(data["packet_id"])
            frag = FragmentTrace(
                src=node,
                packet_id=packet_id,
                msg_id=int(data["msg_id"]),
                seg_index=int(data.get("seg_index", 0)),
                seg_total=int(data.get("seg_total", 1)),
                dst=int(data.get("dst", BROADCAST)),
                origin_time=event.time,
            )
            frag.custody.append((event.time, node))
            self._fragments[(node, packet_id)] = frag
            self._frag_to_msg[(node, packet_id)] = (node, int(data["msg_id"]))
            msg_entry = self._messages.get((node, int(data["msg_id"])))
            if msg_entry is not None:
                msg_entry.fragment_ids.append(packet_id)
        elif kind == "mesh.forward" and node is not None:
            self._forwards[node] = self._forwards.get(node, 0) + 1
            frag = self._fragment_for(data)
            if frag is not None:
                frag.custody.append((event.time, node))
        elif kind == "mesh.frag_deliver" and node is not None:
            frag = self._fragment_for(data)
            if frag is not None:
                frag.delivers.append((event.time, node))
        elif kind == "mesh.deliver" and node is not None:
            src = data.get("src")
            msg_id = data.get("msg_id")
            if src is not None and msg_id is not None:
                msg_entry = self._messages.get((int(src), int(msg_id)))
                if msg_entry is not None and msg_entry.delivered_at is None:
                    msg_entry.delivered_at = event.time
                    msg_entry.deliver_node = node
        elif kind == "mesh.drop" and node is not None:
            reason = str(data.get("reason", "unknown"))
            self._count_drop(reason, node, None)
            frag = self._fragment_for(data)
            if frag is not None:
                frag.drops.append((event.time, node, reason, None))

    def _observe_mac_drop(self, event: TraceEvent) -> None:
        data, node = event.data, event.node
        if node is None:
            return
        reason = str(data.get("reason", "unknown"))
        next_hop = data.get("next_hop")
        self._count_drop(reason, node, next_hop)
        frag = self._fragment_for(data)
        if frag is not None:
            hop = int(next_hop) if next_hop is not None else None
            frag.drops.append((event.time, node, reason, hop))

    def _observe_phy(self, event: TraceEvent) -> None:
        kind, data, node = event.kind, event.data, event.node
        tx_id = data.get("tx_id")
        if tx_id is None:
            return
        tx_id = int(tx_id)
        if kind == "phy.tx" and node is not None:
            next_hop = data.get("next_hop")
            attempt = _TxAttempt(
                tx_id=tx_id,
                time=event.time,
                sender=node,
                next_hop=int(next_hop) if next_hop is not None else None,
            )
            self._tx_attempt[tx_id] = attempt
            frag_key: Optional[Tuple[int, int]] = None
            src, packet_id = data.get("src"), data.get("packet_id")
            if src is not None and packet_id is not None:
                key = (int(src), int(packet_id))
                if key in self._fragments:
                    frag_key = key
                    self._fragments[key].attempts.append(attempt)
            self._tx_fragment[tx_id] = frag_key
            if attempt.next_hop is not None and attempt.next_hop != BROADCAST:
                self._link(node, attempt.next_hop).tx += 1
            return
        attempt = self._tx_attempt.get(tx_id)
        if attempt is None:
            return
        if node is None:
            # Aggregated sub-sensitivity event: no per-node outcome, but the
            # count still witnesses that the frame found no listener there.
            if kind == "phy.below_sensitivity":
                attempt.below_count += int(data.get("count", 0))
            return
        outcome = kind[len("phy."):]
        attempt.outcomes[node] = outcome
        if attempt.next_hop is not None and node == attempt.next_hop:
            link = self._link(attempt.sender, node)
            if kind == "phy.rx":
                link.rx += 1
            elif kind == "phy.collision":
                link.collisions += 1

    def _observe_e2e(self, event: TraceEvent) -> None:
        kind, data, node = event.kind, event.data, event.node
        if node is None:
            return
        if kind == "e2e.retry":
            new_id, prev_id = data.get("msg_id"), data.get("prev_msg_id")
            if new_id is not None and prev_id is not None:
                new_msg = self._messages.get((node, int(new_id)))
                prev_msg = self._messages.get((node, int(prev_id)))
                if new_msg is not None:
                    new_msg.retry_of = int(prev_id)
                if prev_msg is not None:
                    prev_msg.retried_by = int(new_id)
        elif kind == "e2e.ack":
            msg_id = data.get("msg_id")
            if msg_id is not None:
                msg_entry = self._messages.get((node, int(msg_id)))
                if msg_entry is not None:
                    msg_entry.e2e_acked = True
        elif kind == "e2e.give_up":
            for msg_id in data.get("msg_ids", []):
                msg_entry = self._messages.get((node, int(msg_id)))
                if msg_entry is not None:
                    msg_entry.e2e_gave_up = True

    # -- small helpers --------------------------------------------------------

    def _fragment_for(self, data: Dict[str, Any]) -> Optional[FragmentTrace]:
        src, packet_id = data.get("src"), data.get("packet_id")
        if src is None or packet_id is None:
            return None
        return self._fragments.get((int(src), int(packet_id)))

    def _link(self, a: int, b: int) -> LinkStats:
        stats = self._links.get((a, b))
        if stats is None:
            stats = self._links[(a, b)] = LinkStats()
        return stats

    def _count_drop(self, reason: str, node: int, next_hop: Optional[Any]) -> None:
        self._drops_by_reason[reason] = self._drops_by_reason.get(reason, 0) + 1
        self._drops_by_node[node] = self._drops_by_node.get(node, 0) + 1
        if next_hop is not None and int(next_hop) != BROADCAST:
            label = f"{node}->{int(next_hop)}"
            self._drops_by_link[label] = self._drops_by_link.get(label, 0) + 1

    def _node_down_at(self, node: int, time: float) -> bool:
        for start, end in self._downtime.get(node, []):
            if start <= time and (end is None or time < end):
                return True
        return False

    # -- verdicts -------------------------------------------------------------

    def verdict(self, msg: MessageTrace) -> str:
        """Terminal verdict for one message (proximate-cause inference)."""
        if msg.delivered:
            return VERDICT_DELIVERED
        if msg.refused:
            return _REASON_MAP.get(msg.refused_reason or "no_route", VERDICT_NO_ROUTE)
        evidence: List[Tuple[float, str]] = []
        for packet_id in msg.fragment_ids:
            frag = self._fragments.get((msg.origin, packet_id))
            if frag is None:
                continue
            for time, node, reason, next_hop in frag.drops:
                evidence.append((time, self._refine_drop(frag, time, reason, next_hop)))
            # A fragment that vanished in the air leaves no drop event:
            # the last transmission simply found no receiver.  Attribute it
            # to what the PHY saw.
            last = frag.last_attempt()
            if last is not None and not frag.drops and not frag.delivers:
                outcomes = set(last.outcomes.values())
                if "collision" in outcomes:
                    evidence.append((last.time, VERDICT_COLLISION))
                elif (outcomes or last.below_count) and outcomes <= {
                    "below_sensitivity",
                    "rx_missed",
                }:
                    evidence.append((last.time, VERDICT_NO_ROUTE))
        if not evidence:
            return VERDICT_IN_FLIGHT
        evidence.sort(key=lambda pair: pair[0])
        return evidence[-1][1]

    def _refine_drop(
        self, frag: FragmentTrace, time: float, reason: str, next_hop: Optional[int]
    ) -> str:
        base = _REASON_MAP.get(reason, VERDICT_IN_FLIGHT)
        if reason != "ack_timeout":
            return base
        # Retries exhausted: distinguish *why* the ACKs never came.
        if next_hop is not None and self._node_down_at(next_hop, time):
            return VERDICT_NODE_DOWN
        last = frag.last_attempt()
        if last is not None and last.next_hop is not None:
            if last.outcomes.get(last.next_hop) == "collision":
                return VERDICT_COLLISION
        return base

    # -- queries --------------------------------------------------------------

    @property
    def events_seen(self) -> int:
        return self._events_seen

    def messages(self) -> List[MessageTrace]:
        """All known messages in origination order."""
        return sorted(self._messages.values(), key=lambda m: (m.sent_at, m.origin, m.msg_id))

    def message(self, origin: int, msg_id: int) -> Optional[MessageTrace]:
        return self._messages.get((origin, msg_id))

    def find(self, token: str) -> List[MessageTrace]:
        """Resolve a trace id: ``"origin:msg_id"`` or a bare ``msg_id``."""
        if ":" in token:
            origin_s, msg_s = token.split(":", 1)
            msg_entry = self._messages.get((int(origin_s), int(msg_s)))
            return [msg_entry] if msg_entry is not None else []
        wanted = int(token)
        return [m for m in self.messages() if m.msg_id == wanted]

    def undelivered(self) -> List[MessageTrace]:
        return [m for m in self.messages() if not m.delivered]

    def fragment(self, src: int, packet_id: int) -> Optional[FragmentTrace]:
        return self._fragments.get((src, packet_id))

    def verdict_counts(self) -> Dict[str, int]:
        """Messages per terminal verdict (all verdicts present, maybe 0)."""
        counts = {verdict: 0 for verdict in ALL_VERDICTS}
        for msg in self._messages.values():
            counts[self.verdict(msg)] += 1
        return counts

    def drop_counts(self, by: str = "reason") -> Dict[str, int]:
        """Raw drop-event tallies grouped by ``reason``, ``node`` or ``link``."""
        if by == "reason":
            return dict(self._drops_by_reason)
        if by == "node":
            return {f"n{node}": count for node, count in self._drops_by_node.items()}
        if by == "link":
            return dict(self._drops_by_link)
        raise ValueError(f"unknown drop grouping {by!r} (want reason|node|link)")

    def link_stats(self) -> Dict[Tuple[int, int], LinkStats]:
        """Per directed link: unicast frames sent, received, collided."""
        return dict(self._links)

    def forwarding_load(self) -> Dict[int, int]:
        """mesh.forward count per relay node."""
        return dict(self._forwards)

    def hop_latencies(self) -> List[float]:
        """Per-hop custody latencies (seconds) across all fragments."""
        latencies: List[float] = []
        for frag in self._fragments.values():
            chain = list(frag.custody)
            if frag.delivers:
                chain.append(frag.delivers[0])
            for (t_prev, _), (t_next, _) in zip(chain, chain[1:]):
                latencies.append(t_next - t_prev)
        return latencies

    def hop_latency_histogram(self, bucket_s: float = 0.5, max_buckets: int = 20) -> Dict[str, int]:
        """Histogram of hop latencies; the last bucket is open-ended."""
        histogram: Dict[str, int] = {}
        for latency in self.hop_latencies():
            index = min(int(latency / bucket_s), max_buckets - 1)
            low = index * bucket_s
            label = (
                f">={low:.1f}s" if index == max_buckets - 1 else f"{low:.1f}-{low + bucket_s:.1f}s"
            )
            histogram[label] = histogram.get(label, 0) + 1
        return histogram

    # -- causal timelines -----------------------------------------------------

    def timeline(self, msg: MessageTrace) -> List[TimelineEntry]:
        """The message's reconstructed hop-by-hop story, chronological."""
        entries: List[TimelineEntry] = []
        if msg.refused:
            entries.append(
                TimelineEntry(
                    msg.sent_at, msg.origin, "origin refused",
                    f"dst=n{msg.dst} reason={msg.refused_reason}",
                )
            )
        else:
            entries.append(
                TimelineEntry(
                    msg.sent_at, msg.origin, "origin",
                    f"dst=n{msg.dst} size={msg.size}B fragments={msg.n_fragments}",
                )
            )
        if msg.retry_of is not None:
            entries.append(
                TimelineEntry(msg.sent_at, msg.origin, "e2e retry", f"of msg {msg.retry_of}")
            )
        for packet_id in msg.fragment_ids:
            frag = self._fragments.get((msg.origin, packet_id))
            if frag is None:
                continue
            tag = f"frag {frag.seg_index + 1}/{frag.seg_total} (pkt {packet_id})"
            for attempt in frag.attempts:
                hop = "broadcast" if attempt.next_hop in (None, BROADCAST) else f"-> n{attempt.next_hop}"
                fate = self._attempt_fate(attempt)
                entries.append(
                    TimelineEntry(attempt.time, attempt.sender, f"tx {tag} {hop}", fate)
                )
            for time, node in frag.custody[1:]:
                entries.append(TimelineEntry(time, node, f"forward {tag}"))
            for time, node, reason, next_hop in frag.drops:
                where = "" if next_hop is None else f" next_hop=n{next_hop}"
                entries.append(
                    TimelineEntry(time, node, f"DROP {tag}", f"reason={reason}{where}")
                )
            for time, node in frag.delivers:
                entries.append(TimelineEntry(time, node, f"arrive {tag}"))
        if msg.delivered_at is not None:
            entries.append(
                TimelineEntry(
                    msg.delivered_at, msg.deliver_node, "DELIVERED",
                    f"latency={msg.delivered_at - msg.sent_at:.3f}s",
                )
            )
        else:
            verdict = self.verdict(msg)
            detail = verdict
            if verdict == VERDICT_IN_FLIGHT:
                stuck = self._stuck_detail(msg)
                if stuck:
                    detail = f"{verdict} ({stuck})"
            last_t = max((e.time for e in entries), default=msg.sent_at)
            entries.append(TimelineEntry(last_t, None, "VERDICT", detail))
        entries.sort(key=lambda e: e.time)
        return entries

    def _stuck_detail(self, msg: MessageTrace) -> str:
        """Where an in-flight message's fragments were last seen."""
        places: List[str] = []
        for packet_id in msg.fragment_ids:
            frag = self._fragments.get((msg.origin, packet_id))
            if frag is None or frag.delivers or frag.drops:
                continue
            holder = frag.custody[-1][1] if frag.custody else msg.origin
            state = "queued, never transmitted" if not frag.attempts else "in MAC queue"
            places.append(f"pkt {packet_id} {state} at n{holder}")
        return "; ".join(places)

    def _attempt_fate(self, attempt: _TxAttempt) -> str:
        if attempt.next_hop is not None and attempt.next_hop != BROADCAST:
            outcome = attempt.outcomes.get(attempt.next_hop)
            return f"at next hop: {outcome or 'lost'}"
        if not attempt.outcomes:
            return "no receivers"
        received = sum(1 for fate in attempt.outcomes.values() if fate == "rx")
        return f"heard by {received}/{len(attempt.outcomes)}"

    def explain(self, msg: MessageTrace) -> str:
        """Human-readable causal report for one message."""
        verdict = self.verdict(msg)
        header = (
            f"message {msg.trace_id} n{msg.origin} -> "
            f"{'broadcast' if msg.dst == BROADCAST else f'n{msg.dst}'}: {verdict}"
        )
        lines = [header]
        lines.extend(f"  {entry.render()}" for entry in self.timeline(msg))
        return "\n".join(lines)

    # -- export ---------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """Summary tables as one JSON-able dict (the dashboard's view)."""
        return {
            "messages": len(self._messages),
            "verdicts": self.verdict_counts(),
            "drops_by_reason": self.drop_counts("reason"),
            "drops_by_node": self.drop_counts("node"),
            "drops_by_link": self.drop_counts("link"),
            "forwarding_load": {f"n{node}": c for node, c in sorted(self._forwards.items())},
            "links": {
                f"{a}->{b}": {
                    "tx": stats.tx,
                    "rx": stats.rx,
                    "collisions": stats.collisions,
                    "loss_rate": stats.loss_rate,
                }
                for (a, b), stats in sorted(self._links.items())
            },
            "hop_latency_histogram": self.hop_latency_histogram(),
        }
