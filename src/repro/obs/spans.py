"""Span profiler: dual-clock (sim time + host perf counter) timing.

The profiler answers "where does the wall-clock go?" for the simulation
engine and its drivers.  Usage::

    profiler = SpanProfiler(enabled=True, sim_clock=lambda: sim.now)
    with profiler.span("phy.step"):
        ...

Every span records host wall time (``time.perf_counter``) and, when a
sim clock is attached, the simulated time that elapsed inside it.  Stats
aggregate per span name — count, total/max wall seconds, total sim
seconds — so hot loops (the engine times *every event callback* under
its ``__qualname__``) stay O(1) memory.

**Disabled cost is the contract**: :meth:`SpanProfiler.span` returns a
shared no-op context manager when disabled, and the sim engine's hot
loop checks ``profiler.enabled`` before even calling :meth:`span`.
``benchmarks/bench_o1_trace_overhead.py`` pins the disabled path within
3 % of a profiler-free run.

This module is simulation-scoped for reprolint purposes (its *sim* clock
must come from the simulator), but profiling is precisely the act of
reading the host clock — those reads are suppressed with rationale
rather than exempting the whole module.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

#: schema tag stamped on every exported span line
SPAN_SCHEMA = "repro.obs.span/1"


def _wall_s() -> float:
    """Host wall clock in seconds (monotonic, high resolution)."""
    return time.perf_counter()  # reprolint: allow[RL001] -- profiling measures the host clock by definition; sim results never depend on it


@dataclass
class SpanStats:
    """Aggregated timings for one span name."""

    name: str
    count: int = 0
    wall_s: float = 0.0
    wall_max_s: float = 0.0
    sim_s: float = 0.0

    def add(self, wall_s: float, sim_s: float) -> None:
        self.count += 1
        self.wall_s += wall_s
        if wall_s > self.wall_max_s:
            self.wall_max_s = wall_s
        self.sim_s += sim_s

    @property
    def wall_mean_s(self) -> float:
        return self.wall_s / self.count if self.count else 0.0

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": SPAN_SCHEMA,
            "name": self.name,
            "count": self.count,
            "wall_s": self.wall_s,
            "wall_mean_s": self.wall_mean_s,
            "wall_max_s": self.wall_max_s,
            "sim_s": self.sim_s,
        }


class _NullSpan:
    """Shared no-op context manager returned while the profiler is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """One active measurement; created only when the profiler is enabled."""

    __slots__ = ("_profiler", "_name", "_wall0", "_sim0")

    def __init__(self, profiler: "SpanProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_LiveSpan":
        self._sim0 = self._profiler.sim_now()
        self._wall0 = _wall_s()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        wall = _wall_s() - self._wall0
        sim = self._profiler.sim_now() - self._sim0
        self._profiler.record(self._name, wall, sim)
        return False


class SpanProfiler:
    """Aggregating dual-clock span profiler.

    Attributes:
        enabled: live switch; flipping it affects subsequent spans only.
    """

    def __init__(
        self,
        enabled: bool = False,
        sim_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.enabled = enabled
        self._sim_clock = sim_clock
        self._stats: Dict[str, SpanStats] = {}

    # -- recording ------------------------------------------------------------

    def span(self, name: str) -> Union[_LiveSpan, _NullSpan]:
        """Context manager timing the enclosed block under ``name``.

        Returns a shared no-op object when disabled: no allocation, no
        clock reads.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name)

    def sim_now(self) -> float:
        """Current simulated time, or 0.0 when no sim clock is attached."""
        return self._sim_clock() if self._sim_clock is not None else 0.0

    def record(self, name: str, wall_s: float, sim_s: float) -> None:
        """Fold one measurement into the per-name aggregate."""
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = SpanStats(name=name)
        stats.add(wall_s, sim_s)

    def attach_sim_clock(self, sim_clock: Callable[[], float]) -> None:
        self._sim_clock = sim_clock

    # -- queries --------------------------------------------------------------

    def stats(self) -> Dict[str, SpanStats]:
        """Aggregates by span name (live view)."""
        return self._stats

    def top(self, n: int = 10) -> List[SpanStats]:
        """The ``n`` span names with the most total wall time, descending."""
        ranked = sorted(self._stats.values(), key=lambda s: (-s.wall_s, s.name))
        return ranked[:n]

    def reset(self) -> None:
        self._stats.clear()

    # -- export ---------------------------------------------------------------

    def to_ndjson_lines(self) -> List[str]:
        """One JSON object per span name, sorted by total wall time."""
        return [
            json.dumps(stats.to_json_dict(), sort_keys=True)
            for stats in self.top(len(self._stats))
        ]

    def export_ndjson(self, path: Union[str, Path]) -> int:
        """Write the aggregate as NDJSON; returns the line count."""
        lines = self.to_ndjson_lines()
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
        return len(lines)
