"""Observability layer: packet flight recorder, span profiler, captures.

Built *on top of* the simulation's ground-truth trace — nothing here
perturbs a run.  See ``docs/OBSERVABILITY.md`` for the tour and the
``repro-trace`` CLI for the operator interface.
"""

from repro.obs.recorder import (
    ALL_VERDICTS,
    FlightRecorder,
    FragmentTrace,
    LinkStats,
    MessageTrace,
    TimelineEntry,
)
from repro.obs.spans import SPAN_SCHEMA, SpanProfiler, SpanStats
from repro.obs.ndjson import (
    TRACE_SCHEMA,
    CaptureFormatError,
    export_trace,
    read_trace,
    replay_into_recorder,
    validate_spans_file,
    validate_trace_file,
)

__all__ = [
    "ALL_VERDICTS",
    "CaptureFormatError",
    "FlightRecorder",
    "FragmentTrace",
    "LinkStats",
    "MessageTrace",
    "SPAN_SCHEMA",
    "SpanProfiler",
    "SpanStats",
    "TimelineEntry",
    "TRACE_SCHEMA",
    "export_trace",
    "read_trace",
    "replay_into_recorder",
    "validate_spans_file",
    "validate_trace_file",
]
