"""NDJSON capture format for trace events and span profiles.

A trace capture is newline-delimited JSON: one **header** line carrying
the schema tag and free-form metadata, then one line per trace event::

    {"schema": "repro.obs.trace/1", "meta": {...}, "events": 1234}
    {"t": 12.5, "kind": "phy.tx", "node": 3, "data": {"tx_id": 17, ...}}
    ...

The format round-trips through :class:`~repro.sim.trace.TraceEvent`, so a
file written by a campaign worker can be replayed into a
:class:`~repro.obs.recorder.FlightRecorder` offline (``repro-trace why
--trace capture.ndjson``).  Span exports are flat — one aggregate line
per span name, each self-tagged with ``repro.obs.span/1`` (see
:mod:`repro.obs.spans`).

:func:`validate_trace_file` / :func:`validate_spans_file` are the CI
smoke-test hooks: structural checks only (schema tag, required fields,
parseable JSON), no semantic replay.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import SPAN_SCHEMA
from repro.sim.trace import TraceEvent, TraceLog

#: schema tag on the header line of every trace capture
TRACE_SCHEMA = "repro.obs.trace/1"


class CaptureFormatError(ReproError):
    """A capture file failed structural validation."""


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    return {"t": event.time, "kind": event.kind, "node": event.node, "data": event.data}


def event_from_dict(raw: Dict[str, Any]) -> TraceEvent:
    return TraceEvent(
        time=float(raw["t"]),
        kind=str(raw["kind"]),
        node=raw.get("node"),
        data=dict(raw.get("data", {})),
    )


def export_trace(
    trace: TraceLog,
    path: Union[str, Path],
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write the retained events of ``trace`` as an NDJSON capture.

    Returns:
        The number of event lines written (the header is not counted).
    """
    events = list(trace.events())
    header = {
        "schema": TRACE_SCHEMA,
        "meta": meta or {},
        "events": len(events),
        "total_emitted": trace.total_emitted,
    }
    with Path(path).open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for event in events:
            fh.write(json.dumps(event_to_dict(event), sort_keys=True) + "\n")
    return len(events)


def read_trace(path: Union[str, Path]) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Load a capture: returns ``(header, events)``.

    Raises:
        CaptureFormatError: when the file is not a trace capture.
    """
    header: Optional[Dict[str, Any]] = None
    events: List[TraceEvent] = []
    for lineno, raw in _json_lines(path):
        if header is None:
            if raw.get("schema") != TRACE_SCHEMA:
                raise CaptureFormatError(
                    f"{path}: line {lineno} is not a {TRACE_SCHEMA} header "
                    f"(got schema={raw.get('schema')!r})"
                )
            header = raw
            continue
        try:
            events.append(event_from_dict(raw))
        except (KeyError, TypeError, ValueError) as exc:
            raise CaptureFormatError(f"{path}: bad event on line {lineno}: {exc}") from exc
    if header is None:
        raise CaptureFormatError(f"{path}: empty capture (no header line)")
    return header, events


def _json_lines(path: Union[str, Path]) -> Iterator[Tuple[int, Dict[str, Any]]]:
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CaptureFormatError(f"{path}: line {lineno} is not JSON: {exc}") from exc
            if not isinstance(raw, dict):
                raise CaptureFormatError(f"{path}: line {lineno} is not a JSON object")
            yield lineno, raw


def validate_trace_file(path: Union[str, Path]) -> Dict[str, Any]:
    """Structurally validate a trace capture; returns summary stats.

    Raises:
        CaptureFormatError: on the first structural problem.
    """
    header, events = read_trace(path)
    declared = header.get("events")
    if declared is not None and declared != len(events):
        raise CaptureFormatError(
            f"{path}: header declares {declared} events, file has {len(events)}"
        )
    kinds: Dict[str, int] = {}
    last_t = float("-inf")
    monotonic = True
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        if event.time < last_t:
            monotonic = False
        last_t = event.time
    if not monotonic:
        raise CaptureFormatError(f"{path}: event times are not monotonically non-decreasing")
    return {"schema": header["schema"], "events": len(events), "kinds": kinds}


def validate_spans_file(path: Union[str, Path]) -> Dict[str, Any]:
    """Structurally validate a span export; returns summary stats."""
    names: List[str] = []
    for lineno, raw in _json_lines(path):
        if raw.get("schema") != SPAN_SCHEMA:
            raise CaptureFormatError(
                f"{path}: line {lineno} schema={raw.get('schema')!r}, want {SPAN_SCHEMA}"
            )
        for field in ("name", "count", "wall_s"):
            if field not in raw:
                raise CaptureFormatError(f"{path}: line {lineno} missing field {field!r}")
        names.append(str(raw["name"]))
    return {"schema": SPAN_SCHEMA, "spans": len(names), "names": names}


def replay_into_recorder(path: Union[str, Path], recorder: FlightRecorder) -> int:
    """Feed a capture file into a :class:`FlightRecorder`; returns event count."""
    _, events = read_trace(path)
    return recorder.consume(events)
