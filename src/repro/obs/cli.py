"""``repro-trace``: interrogate packet flight recordings.

Subcommands::

    repro-trace export     run a scenario with tracing, write NDJSON captures
    repro-trace why        causal timeline + terminal verdict per message
    repro-trace drops      drop accounting by reason / link / node
    repro-trace spans      engine span profile (where the wall-clock went)
    repro-trace validate   structural check of a capture file

``why``, ``drops`` and ``spans`` work in two modes: **offline** against a
capture produced by ``export`` (or by a campaign run with a
``capture_trace`` axis) via ``--trace``/``--spans-file``, or **live** by
running the scenario described by the CLI flags right now.

Examples::

    repro-trace export --nodes 20 --out trace.ndjson --spans-out spans.ndjson
    repro-trace why undelivered --trace trace.ndjson
    repro-trace why 3:17402 --trace trace.ndjson
    repro-trace drops --by link --trace trace.ndjson --json
    repro-trace spans --top 10 --spans-file spans.ndjson
    repro-trace validate trace.ndjson
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.cli import _add_scenario_args, _config_from_args
from repro.obs.ndjson import (
    CaptureFormatError,
    export_trace,
    read_trace,
    replay_into_recorder,
    validate_spans_file,
    validate_trace_file,
)
from repro.obs.recorder import FlightRecorder, MessageTrace
from repro.obs.spans import SpanProfiler
from repro.scenario.config import Environment, WorkloadSpec


def _add_lossy_args(parser: argparse.ArgumentParser) -> None:
    """Extra scenario knobs beyond repro-lora's shared set."""
    parser.add_argument(
        "--environment", choices=[e.value for e in Environment], default="suburban",
        help="path-loss preset (urban is the lossy one)",
    )
    parser.add_argument("--tx-power", type=float, default=14.0, help="TX power dBm")
    parser.add_argument(
        "--traffic-kind", choices=["periodic", "poisson", "bursty", "event", "none"],
        default="periodic", help="workload kind",
    )
    parser.add_argument(
        "--pattern", choices=["convergecast", "random_pairs"], default="convergecast",
        help="traffic pattern",
    )
    parser.add_argument("--pairs", type=int, default=10, help="pair count for random_pairs")
    parser.add_argument("--rate", type=float, default=0.01, help="poisson msgs/s per source")


def _scenario_recorder(args: argparse.Namespace) -> Tuple[FlightRecorder, SpanProfiler]:
    """Run the scenario described by ``args`` with tracing forced on."""
    from repro.scenario.runner import run_scenario

    config = _config_from_args(args).with_overrides(
        capture_trace=True,
        environment=Environment(args.environment),
        tx_power_dbm=args.tx_power,
        workload=WorkloadSpec(
            kind=args.traffic_kind,
            pattern=args.pattern,
            interval_s=args.traffic_interval,
            rate_per_s=args.rate,
            payload_bytes=args.payload,
            n_pairs=args.pairs,
        ),
    )
    print(
        f"running {config.n_nodes}-node scenario "
        f"({config.environment.value}, {config.protocol}) ...",
        file=sys.stderr,
    )
    result = run_scenario(config)
    result.close()
    assert result.recorder is not None and result.profiler is not None
    return result.recorder, result.profiler


def _load_recorder(args: argparse.Namespace) -> FlightRecorder:
    if args.trace is not None:
        recorder = FlightRecorder()
        replay_into_recorder(args.trace, recorder)
        return recorder
    recorder, _ = _scenario_recorder(args)
    return recorder


# -- subcommands ---------------------------------------------------------------


def cmd_export(args: argparse.Namespace) -> int:
    from repro.scenario.runner import Scenario

    config = _config_from_args(args).with_overrides(
        capture_trace=True,
        environment=Environment(args.environment),
        tx_power_dbm=args.tx_power,
        workload=WorkloadSpec(
            kind=args.traffic_kind,
            pattern=args.pattern,
            interval_s=args.traffic_interval,
            rate_per_s=args.rate,
            payload_bytes=args.payload,
            n_pairs=args.pairs,
        ),
    )
    scenario = Scenario(config)
    result = scenario.run()
    result.close()
    meta = {
        "seed": config.seed,
        "n_nodes": config.n_nodes,
        "protocol": config.protocol,
        "environment": config.environment.value,
    }
    n_events = export_trace(result.trace, args.out, meta=meta)
    print(f"wrote {n_events} events to {args.out}")
    if args.spans_out is not None:
        n_spans = result.profiler.export_ndjson(args.spans_out)
        print(f"wrote {n_spans} span aggregates to {args.spans_out}")
    return 0


def _selected_messages(recorder: FlightRecorder, token: str) -> List[MessageTrace]:
    if token == "all":
        return recorder.messages()
    if token == "undelivered":
        return recorder.undelivered()
    return recorder.find(token)


def cmd_why(args: argparse.Namespace) -> int:
    recorder = _load_recorder(args)
    messages = _selected_messages(recorder, args.msg_id)
    if not messages:
        if args.msg_id in ("all", "undelivered"):
            # An empty selector result is an answer, not an error.
            print("[]" if args.json else f"(no {args.msg_id} messages)")
            return 0
        print(f"no message matches {args.msg_id!r}", file=sys.stderr)
        return 1
    if args.json:
        payload = [
            {
                "trace_id": msg.trace_id,
                "origin": msg.origin,
                "dst": msg.dst,
                "msg_id": msg.msg_id,
                "verdict": recorder.verdict(msg),
                "delivered_at": msg.delivered_at,
                "timeline": [
                    {"t": e.time, "node": e.node, "what": e.what, "detail": e.detail}
                    for e in recorder.timeline(msg)
                ],
            }
            for msg in messages
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for msg in messages:
        print(recorder.explain(msg))
        print()
    return 0


def cmd_drops(args: argparse.Namespace) -> int:
    recorder = _load_recorder(args)
    tables = {
        "verdicts": {k: v for k, v in recorder.verdict_counts().items() if v},
        args.by: recorder.drop_counts(args.by),
    }
    if args.json:
        print(json.dumps(tables, indent=2, sort_keys=True))
        return 0
    print(f"message verdicts ({len(recorder.messages())} messages):")
    for verdict, count in tables["verdicts"].items():
        print(f"  {verdict:>16}  {count}")
    print(f"\nraw drop events by {args.by}:")
    for key, count in sorted(tables[args.by].items(), key=lambda kv: -kv[1]):
        print(f"  {key:>16}  {count}")
    return 0


def cmd_spans(args: argparse.Namespace) -> int:
    if args.spans_file is not None:
        validate_spans_file(args.spans_file)
        with open(args.spans_file, "r", encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        lines.sort(key=lambda row: -float(row.get("wall_s", 0.0)))
        rows = lines[: args.top]
    else:
        _, profiler = _scenario_recorder(args)
        rows = [stats.to_json_dict() for stats in profiler.top(args.top)]
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    print(f"{'span':<48} {'count':>8} {'wall_s':>10} {'mean_us':>9} {'sim_s':>10}")
    for row in rows:
        mean_us = (
            1e6 * float(row["wall_s"]) / row["count"] if row.get("count") else 0.0
        )
        print(
            f"{row['name']:<48} {row['count']:>8} {float(row['wall_s']):>10.4f} "
            f"{mean_us:>9.1f} {float(row.get('sim_s', 0.0)):>10.1f}"
        )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    path = args.file
    try:
        if args.kind == "spans":
            summary = validate_spans_file(path)
        elif args.kind == "trace":
            summary = validate_trace_file(path)
        else:  # auto-detect on the first line's schema
            try:
                summary = validate_trace_file(path)
            except CaptureFormatError:
                summary = validate_spans_file(path)
    except CaptureFormatError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(summary, sort_keys=True))
    return 0


# -- wiring --------------------------------------------------------------------


def _add_source_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="analyse this NDJSON capture instead of running a scenario",
    )
    _add_scenario_args(parser)
    _add_lossy_args(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="packet flight recorder: causal lifecycle tracing for LoRa mesh runs",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    export_parser = subparsers.add_parser("export", help="run + write NDJSON captures")
    _add_scenario_args(export_parser)
    _add_lossy_args(export_parser)
    export_parser.add_argument("--out", default="trace.ndjson", help="trace capture path")
    export_parser.add_argument(
        "--spans-out", default=None, help="also write the span profile here"
    )
    export_parser.set_defaults(func=cmd_export)

    why_parser = subparsers.add_parser("why", help="explain one message's fate")
    why_parser.add_argument(
        "msg_id",
        help="trace id 'origin:msg_id', bare msg_id, 'all' or 'undelivered'",
    )
    why_parser.add_argument("--json", action="store_true", help="machine-readable output")
    _add_source_args(why_parser)
    why_parser.set_defaults(func=cmd_why)

    drops_parser = subparsers.add_parser("drops", help="drop-reason accounting")
    drops_parser.add_argument(
        "--by", choices=["reason", "link", "node"], default="reason",
        help="grouping for the raw drop-event table",
    )
    drops_parser.add_argument("--json", action="store_true", help="machine-readable output")
    _add_source_args(drops_parser)
    drops_parser.set_defaults(func=cmd_drops)

    spans_parser = subparsers.add_parser("spans", help="engine span profile")
    spans_parser.add_argument("--top", type=int, default=15, help="rows to show")
    spans_parser.add_argument(
        "--spans-file", default=None, metavar="FILE",
        help="read a span NDJSON export instead of running a scenario",
    )
    spans_parser.add_argument("--json", action="store_true", help="machine-readable output")
    _add_scenario_args(spans_parser)
    _add_lossy_args(spans_parser)
    spans_parser.set_defaults(func=cmd_spans)

    validate_parser = subparsers.add_parser("validate", help="check a capture file")
    validate_parser.add_argument("file", help="NDJSON capture to validate")
    validate_parser.add_argument(
        "--kind", choices=["auto", "trace", "spans"], default="auto",
        help="expected capture flavour",
    )
    validate_parser.set_defaults(func=cmd_validate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())
