"""Command-line interface.

Subcommands::

    repro-lora simulate   run a scenario and print the dashboard
    repro-lora serve      run a scenario, then serve the dashboard over HTTP
    repro-lora airtime    print LoRa time-on-air for given settings
    repro-lora dot        run a scenario and print the topology as DOT
    repro-lora analyze    run a scenario and print the pathology report
    repro-lora export     run a scenario and export telemetry (JSONL/CSV)

(Installed as ``repro-lora``; also runnable as ``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.mesh.config import MeshConfig
from repro.monitor.dashboard import Dashboard
from repro.phy.airtime import time_on_air
from repro.phy.params import LoRaParams
from repro.scenario.config import MonitorMode, ScenarioConfig, WorkloadSpec
from repro.scenario.runner import run_scenario
from repro.sim.topology import Placement


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1, help="master random seed")
    parser.add_argument("--nodes", type=int, default=16, help="number of mesh nodes")
    parser.add_argument(
        "--placement", choices=[p.value for p in Placement], default="grid",
        help="node placement strategy",
    )
    parser.add_argument("--sf", type=int, default=7, help="LoRa spreading factor (7-12)")
    parser.add_argument(
        "--protocol", choices=["dv", "flood"], default="dv",
        help="mesh protocol: distance-vector or managed flooding",
    )
    parser.add_argument(
        "--monitor", choices=[m.value for m in MonitorMode], default="oob",
        help="telemetry mode: out-of-band, in-band or none",
    )
    parser.add_argument(
        "--report-interval", type=float, default=60.0,
        help="monitoring report interval in seconds",
    )
    parser.add_argument("--warmup", type=float, default=1200.0, help="warmup seconds")
    parser.add_argument("--duration", type=float, default=1800.0, help="measured seconds")
    parser.add_argument(
        "--traffic-interval", type=float, default=120.0,
        help="application message interval per node (seconds)",
    )
    parser.add_argument("--payload", type=int, default=24, help="application payload bytes")
    parser.add_argument(
        "--capture-trace", action="store_true",
        help="enable the flight recorder + span profiler (see repro-trace)",
    )


def _config_from_args(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig(
        seed=args.seed,
        n_nodes=args.nodes,
        placement=Placement(args.placement),
        spreading_factor=args.sf,
        protocol=args.protocol,
        monitor_mode=MonitorMode(args.monitor),
        report_interval_s=args.report_interval,
        warmup_s=args.warmup,
        duration_s=args.duration,
        mesh=MeshConfig(),
        workload=WorkloadSpec(
            kind="periodic",
            interval_s=args.traffic_interval,
            payload_bytes=args.payload,
        ),
        capture_trace=getattr(args, "capture_trace", False),
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    print(
        f"simulating {config.n_nodes} nodes, SF{config.spreading_factor}, "
        f"protocol={config.protocol}, monitor={config.monitor_mode.value} ...",
        file=sys.stderr,
    )
    result = run_scenario(config)
    print(f"ground-truth message PDR: {result.truth.msg_pdr:.1%}", file=sys.stderr)
    if result.store is not None:
        dashboard = Dashboard(
            result.store, report_interval_s=config.report_interval_s,
            flight_recorder=result.recorder,
        )
        print(dashboard.render_text(result.sim.now))
    else:
        print("(monitoring disabled; no dashboard)", file=sys.stderr)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.monitor.httpapi import MonitoringHttpServer
    from repro.monitor.transport import HttpIngestTransport, UdpIngestTransport

    config = _config_from_args(args)
    if config.monitor_mode is MonitorMode.NONE:
        print("serve requires monitoring enabled", file=sys.stderr)
        return 2
    result = run_scenario(config)
    dashboard = Dashboard(
        result.store, report_interval_s=config.report_interval_s,
        monitor_server=result.server,
    )
    frozen_now = result.sim.now
    http_server = MonitoringHttpServer(
        result.server, dashboard, port=args.port, clock=lambda: frozen_now
    )
    http_transport = result.server.attach_transport(HttpIngestTransport(http_server))
    http_transport.start()
    udp_transport = None
    if args.udp_port is not None:
        udp_transport = result.server.attach_transport(
            UdpIngestTransport(
                result.server, port=args.udp_port, codec=args.codec
            )
        )
        udp_transport.start()
    print(f"dashboard at {http_server.url}  (Ctrl-C to stop)")
    print(
        f"live stream (SSE) at {http_server.url}/api/v1/stream (fleet) "
        f"and {http_server.url}/api/v1/networks/<id>/stream (per network)"
    )
    if udp_transport is not None:
        print(
            f"udp ingest on port {udp_transport.port} "
            f"(codec={args.codec}; see PROTOCOL.md for the datagram format)"
        )
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        if udp_transport is not None:
            udp_transport.stop()
        http_transport.stop()
    return 0


def cmd_airtime(args: argparse.Namespace) -> int:
    params = LoRaParams(
        spreading_factor=args.sf,
        bandwidth_hz=args.bw * 1000,
        coding_rate=args.cr,
    )
    airtime = time_on_air(params, args.payload)
    print(f"{params.describe()} payload={args.payload}B -> {airtime * 1000:.2f} ms")
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    if config.monitor_mode is MonitorMode.NONE:
        print("dot requires monitoring enabled", file=sys.stderr)
        return 2
    result = run_scenario(config)
    dashboard = Dashboard(result.store, report_interval_s=config.report_interval_s)
    print(dashboard.render_dot())
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import pathology, planning

    config = _config_from_args(args)
    if config.monitor_mode is MonitorMode.NONE:
        print("analyze requires monitoring enabled", file=sys.stderr)
        return 2
    result = run_scenario(config)
    store = result.store
    print(f"=== pathology report ({config.n_nodes} nodes, "
          f"SF{config.spreading_factor}) ===")
    relays = pathology.congested_relays(store)
    print(f"congested relays: {len(relays)}")
    for relay in relays:
        print(f"  node {relay.node}: retx {relay.retransmission_rate:.0%}, "
              f"airtime share {relay.airtime_share:.0%}")
    hidden = pathology.hidden_terminal_pairs(store, min_frames=20)
    print(f"hidden-terminal pairs: {len(hidden)}")
    for pair in hidden[:10]:
        print(f"  {pair.tx_a} <-x-> {pair.tx_b} via receiver {pair.shared_receiver}")
    asymmetric = pathology.asymmetric_links(store, min_frames=10)
    print(f"asymmetric/one-way links: {len(asymmetric)}")
    starving = pathology.starving_sources(store)
    print(f"starving sources: {len(starving)}")
    for source in starving:
        print(f"  node {source.node}: PDR {source.pdr:.0%} "
              f"(median {source.median_pdr:.0%})")
    recommendations = planning.sf_recommendations(store, current_sf=config.spreading_factor)
    downgrades = [r for r in recommendations if r.recommended_sf < r.current_sf]
    print(f"SF downgrade candidates: {len(downgrades)}/{len(recommendations)}")
    candidates = planning.best_gateway_candidates(store, top=3)
    if candidates:
        best = candidates[0]
        print(f"best gateway placement: node {best.node} "
              f"({best.mean_hops_to_all:.2f} mean hops)")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.monitor.export import (
        export_jsonl,
        export_packet_records_csv,
        export_status_records_csv,
    )

    config = _config_from_args(args)
    if config.monitor_mode is MonitorMode.NONE:
        print("export requires monitoring enabled", file=sys.stderr)
        return 2
    result = run_scenario(config)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    n_jsonl = export_jsonl(result.store, out_dir / "telemetry.jsonl")
    n_packets = export_packet_records_csv(result.store, out_dir / "packets.csv")
    n_status = export_status_records_csv(result.store, out_dir / "status.csv")
    print(f"wrote {n_jsonl} records to {out_dir}/telemetry.jsonl "
          f"(+ {n_packets} packet rows, {n_status} status rows as CSV)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lora",
        description="LoRa mesh network monitoring (ICDCS 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sim_parser = subparsers.add_parser("simulate", help="run a scenario, print the dashboard")
    _add_scenario_args(sim_parser)
    sim_parser.set_defaults(func=cmd_simulate)

    serve_parser = subparsers.add_parser("serve", help="run a scenario, serve it over HTTP")
    _add_scenario_args(serve_parser)
    serve_parser.add_argument("--port", type=int, default=8080, help="HTTP port")
    serve_parser.add_argument(
        "--udp-port", type=int, default=None,
        help="also accept telemetry datagrams on this UDP port (0 = any free port)",
    )
    serve_parser.add_argument(
        "--codec", choices=["binary", "json"], default="binary",
        help="wire encoding expected on the UDP ingest port",
    )
    serve_parser.set_defaults(func=cmd_serve)

    airtime_parser = subparsers.add_parser("airtime", help="LoRa time-on-air calculator")
    airtime_parser.add_argument("--sf", type=int, default=7)
    airtime_parser.add_argument("--bw", type=int, default=125, help="bandwidth in kHz")
    airtime_parser.add_argument("--cr", type=int, default=1, help="coding rate 1..4 (4/5..4/8)")
    airtime_parser.add_argument("--payload", type=int, default=24, help="payload bytes")
    airtime_parser.set_defaults(func=cmd_airtime)

    dot_parser = subparsers.add_parser("dot", help="print reconstructed topology as DOT")
    _add_scenario_args(dot_parser)
    dot_parser.set_defaults(func=cmd_dot)

    analyze_parser = subparsers.add_parser("analyze", help="run + print pathology report")
    _add_scenario_args(analyze_parser)
    analyze_parser.set_defaults(func=cmd_analyze)

    export_parser = subparsers.add_parser("export", help="run + export telemetry")
    _add_scenario_args(export_parser)
    export_parser.add_argument("--out", default="telemetry-export", help="output directory")
    export_parser.set_defaults(func=cmd_export)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
