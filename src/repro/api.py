"""The supported public surface of ``repro``, in one flat namespace.

Downstream code — experiment scripts, notebooks, benchmarks, external
tooling — should import from here::

    from repro.api import ScenarioConfig, run_scenario, MonitorServer

Everything in ``__all__`` below is covered by the compatibility promise:
names stay importable from this module across minor versions, with
deprecation shims (and a release-notes entry) before any removal.  The
implementation modules (``repro.monitor.server``, ``repro.scenario.runner``,
...) remain importable but are *internal*: their layout may change
without notice, and :mod:`repro.lint` rule RL007 flags deep imports of
facade names from tests and benchmarks.

The facade is organised by layer:

* **Simulation** — :class:`Simulator`, :class:`MeshConfig`,
  :class:`LoRaParams`, :func:`time_on_air`.
* **PHY / propagation seam** — :class:`Channel` (keyword-only
  ``reachability=`` / ``config=`` construction), :class:`ChannelConfig`,
  the :class:`PropagationModel` and :class:`ReachabilityIndex` protocols
  with their stock implementations (:class:`LinkModel`,
  :class:`GridReachabilityIndex`, :class:`BruteForceReachability`,
  :class:`LinkBudgetCache`), :class:`CollisionModel`, and the topology
  types (:class:`Topology`, :class:`Placement`, :func:`make_topology`).
* **Scenarios** — :func:`run_scenario`, :class:`Scenario`,
  :class:`ScenarioConfig`, :class:`ScenarioResult`, :class:`GroundTruth`,
  workload/mobility/fault specs.
* **Campaigns** — :class:`CampaignSpec`, :class:`CampaignPlan`,
  :class:`CampaignRunner`, :func:`aggregate_report`.
* **Monitoring** — client (:class:`MonitorClient`), uplinks, the
  multi-tenant :class:`MonitorServer` + :class:`NetworkRegistry`, stores,
  dashboard, HTTP server and the v1 API schema.
* **Streaming** — the push pipeline: :class:`StreamHub` + subscriptions,
  the ``repro.stream/1`` event schema, the :class:`SseStreamClient`
  consumer and the :class:`IncrementalRollup` feeding it.
* **Observability** — :class:`FlightRecorder`, :class:`SpanProfiler`,
  trace export/replay.
"""

from __future__ import annotations

from repro import __version__
from repro.campaign.aggregate import aggregate_report
from repro.campaign.scheduler import CampaignPlan, CampaignRunner
from repro.campaign.spec import CampaignSpec, RunSpec
from repro.errors import ReproError
from repro.mesh import BROADCAST, MeshConfig, MeshNode, Packet, PacketType
from repro.monitor.alerts import Alert, AlertEngine, NodeDelta
from repro.monitor.client import MonitorClient, MonitorClientConfig, SseStreamClient
from repro.monitor.codec import (
    BinaryCodec,
    Codec,
    JsonCodec,
    codec_for_content_type,
    resolve_codec,
)
from repro.monitor.dashboard import Dashboard
from repro.monitor.fleet import fleet_overview, network_tile
from repro.monitor.httpapi import MonitoringHttpServer
from repro.monitor.ingest import (
    DEFAULT_NETWORK_ID,
    BackpressurePolicy,
    IngestResult,
    ServerSelfMetrics,
)
from repro.monitor.records import Direction, PacketRecord, RecordBatch, StatusRecord
from repro.monitor.registry import NetworkRegistry, NetworkShard
from repro.monitor.rollup import IncrementalRollup
from repro.monitor.routes import schema_document
from repro.monitor.server import MonitorServer
from repro.monitor.stream import (
    STREAM_SCHEMA,
    StreamEvent,
    StreamHub,
    StreamSubscription,
    decode_event,
    encode_event,
)
from repro.monitor.sqlitestore import SqliteMetricsStore, sqlite_store_factory
from repro.monitor.storage import MetricsStore
from repro.monitor.transport import (
    HttpIngestTransport,
    IngestTransport,
    MultiProcessIngestFront,
    SequenceGapTracker,
    TelemetryGapAccountant,
    UdpIngestTransport,
)
from repro.monitor.uplink import (
    GatewayBridge,
    HttpIngestClient,
    InBandUplink,
    OutOfBandUplink,
    ReliableInBandUplink,
    UdpIngestClient,
)
from repro.obs.ndjson import export_trace, read_trace, replay_into_recorder
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import SpanProfiler
from repro.phy import LoRaParams, time_on_air
from repro.phy.channel import Channel, ChannelConfig, Reception
from repro.phy.collision import CollisionModel, FrameOnAir
from repro.phy.link import LinkModel, PathLossParams
from repro.phy.reachability import (
    BruteForceReachability,
    GridReachabilityIndex,
    LinkBudgetCache,
    PropagationModel,
    ReachabilityIndex,
)
from repro.scenario.config import MobilitySpec, MonitorMode, ScenarioConfig, WorkloadSpec
from repro.scenario.faults import (
    BatteryDepletion,
    FaultSchedule,
    LinkDegradation,
    NodeCrash,
)
from repro.scenario.results import GroundTruth, ScenarioResult
from repro.scenario.runner import Scenario, run_scenario
from repro.sim import Simulator
from repro.sim.topology import Placement, Topology, make_topology

__all__ = [
    # version / errors
    "__version__",
    "ReproError",
    # simulation substrate
    "Simulator",
    "LoRaParams",
    "time_on_air",
    # PHY / propagation seam
    "Channel",
    "ChannelConfig",
    "Reception",
    "CollisionModel",
    "FrameOnAir",
    "LinkModel",
    "PathLossParams",
    "PropagationModel",
    "ReachabilityIndex",
    "GridReachabilityIndex",
    "BruteForceReachability",
    "LinkBudgetCache",
    "Topology",
    "Placement",
    "make_topology",
    "MeshConfig",
    "MeshNode",
    "Packet",
    "PacketType",
    "BROADCAST",
    # scenarios
    "run_scenario",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "GroundTruth",
    "MonitorMode",
    "WorkloadSpec",
    "MobilitySpec",
    "FaultSchedule",
    "NodeCrash",
    "LinkDegradation",
    "BatteryDepletion",
    # campaigns
    "CampaignSpec",
    "RunSpec",
    "CampaignPlan",
    "CampaignRunner",
    "aggregate_report",
    # monitoring: records and client
    "Direction",
    "PacketRecord",
    "StatusRecord",
    "RecordBatch",
    "MonitorClient",
    "MonitorClientConfig",
    # monitoring: codecs
    "Codec",
    "JsonCodec",
    "BinaryCodec",
    "resolve_codec",
    "codec_for_content_type",
    # monitoring: uplinks
    "OutOfBandUplink",
    "InBandUplink",
    "ReliableInBandUplink",
    "GatewayBridge",
    "HttpIngestClient",
    "UdpIngestClient",
    # monitoring: ingest transports
    "IngestTransport",
    "HttpIngestTransport",
    "UdpIngestTransport",
    "MultiProcessIngestFront",
    "SequenceGapTracker",
    "TelemetryGapAccountant",
    # monitoring: server and multi-tenancy
    "MonitorServer",
    "BackpressurePolicy",
    "IngestResult",
    "ServerSelfMetrics",
    "DEFAULT_NETWORK_ID",
    "NetworkRegistry",
    "NetworkShard",
    "fleet_overview",
    "network_tile",
    # monitoring: stores
    "MetricsStore",
    "SqliteMetricsStore",
    "sqlite_store_factory",
    # monitoring: views and HTTP
    "Dashboard",
    "Alert",
    "AlertEngine",
    "NodeDelta",
    "MonitoringHttpServer",
    "schema_document",
    # monitoring: push pipeline
    "STREAM_SCHEMA",
    "StreamEvent",
    "encode_event",
    "decode_event",
    "StreamHub",
    "StreamSubscription",
    "SseStreamClient",
    "IncrementalRollup",
    # observability
    "FlightRecorder",
    "SpanProfiler",
    "export_trace",
    "read_trace",
    "replay_into_recorder",
]
